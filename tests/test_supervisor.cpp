// Supervised process-isolated sweep execution: a crashing cell must fail
// alone (with harvested forensics) while the rest of the grid completes, a
// livelocked cell must die on the wall-clock timeout, a transiently failing
// cell must be recovered by retry/backoff, a partially failed grid must
// resume from the result cache re-executing only the failures, and a clean
// isolated grid must reproduce the threaded run bit for bit.
#include "src/sweep/supervisor.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "src/apps/workload.hpp"
#include "src/core/run_summary.hpp"
#include "src/sweep/result_cache.hpp"
#include "src/sweep/sweep.hpp"

#include "bench/bench_common.hpp"

namespace netcache {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch directory (forensics, cache, retry markers), removed on
/// teardown. Also clears any stop flag a previous test may have left set.
class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sweep::clear_stop();
    dir_ = fs::temp_directory_path() /
           ("netcache-supervisor-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    sweep::clear_stop();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

sweep::Cell fast_cell(const std::string& app = "sor",
                      SystemKind system = SystemKind::kNetCache) {
  sweep::Cell cell;
  cell.app = app;
  cell.system = system;
  cell.nodes = 4;
  cell.scale = 0.15;
  return cell;
}

/// A cell whose simulation fires a crash (hang) fault mid-run: in isolate
/// mode the child process aborts (livelocks) exactly like a real simulator
/// bug would.
sweep::Cell faulted_cell(const char* spec) {
  sweep::Cell cell = fast_cell();
  std::string s = spec;
  cell.tweak = [s](MachineConfig& cfg) {
    cfg.faults.spec = s;
    cfg.faults.seed = 1;
  };
  return cell;
}

sweep::IsolationOptions isolation(double timeout_s = 60.0, int retries = 0) {
  sweep::IsolationOptions opts;
  opts.enabled = true;
  opts.cell_timeout_s = timeout_s;
  opts.cell_retries = retries;
  opts.backoff_s = 0.01;
  return opts;
}

std::string summary_bytes_sans_wall(core::RunSummary s) {
  // wall_seconds is observability, not a simulated result — the only field
  // allowed to differ between execution modes.
  s.wall_seconds = 0.0;
  return core::serialize_summary(s);
}

TEST_F(SupervisorTest, CrashCellFailsAloneWhileTheGridCompletes) {
  std::vector<sweep::Cell> cells = {
      faulted_cell("crash:1"),
      fast_cell("sor", SystemKind::kNetCache),
      fast_cell("sor", SystemKind::kLambdaNet),
  };
  sweep::IsolationOptions opts = isolation();
  opts.forensics_dir = (dir_ / "forensics").string();

  std::vector<sweep::CellResult> results =
      sweep::run_supervised(cells, 2, opts, nullptr);
  ASSERT_EQ(results.size(), 3u);

  // The poisoned cell is quarantined with its crash forensics harvested.
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].failure.attempts, 1);
  EXPECT_TRUE(results[0].failure.signaled);
  EXPECT_EQ(results[0].failure.term_signal, SIGABRT);
  EXPECT_NE(results[0].failure.stderr_tail.find("fault-crash"),
            std::string::npos)
      << results[0].failure.stderr_tail;
  EXPECT_NE(results[0].error.find("signal"), std::string::npos)
      << results[0].error;

  // The healthy cells complete and match an in-process run bit for bit.
  for (std::size_t i = 1; i < cells.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].error;
    ASSERT_TRUE(results[i].summary.verified);
    sweep::CellResult direct = sweep::run_cell(cells[i], nullptr);
    ASSERT_TRUE(direct.ok) << direct.error;
    EXPECT_EQ(summary_bytes_sans_wall(results[i].summary),
              summary_bytes_sans_wall(direct.summary));
  }

  // One forensics file for the one failed attempt, carrying the
  // FailureReporter output.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(opts.forensics_dir)) {
    files.push_back(entry.path());
  }
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].filename().string().find("attempt1"), std::string::npos);
  std::FILE* f = std::fopen(files[0].string().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body(1 << 16, '\0');
  body.resize(std::fread(body.data(), 1, body.size(), f));
  std::fclose(f);
  EXPECT_NE(body.find("fault-crash"), std::string::npos);
  EXPECT_NE(body.find("signal 6"), std::string::npos) << body;
}

TEST_F(SupervisorTest, TimeoutKillsALivelockedCell) {
  // The companion cell fails in-band within milliseconds (watchdog trip) —
  // fast enough to settle inside the 2 s budget even under a sanitizer, yet
  // still proving the hang's SIGKILL is not a grid-wide event: its frame
  // arrives intact while the livelocked sibling burns its wall clock.
  sweep::Cell companion = fast_cell();
  companion.limits.max_cycles = 100;
  std::vector<sweep::Cell> cells = {
      faulted_cell("hang:1"),
      companion,
  };
  std::vector<sweep::CellResult> results =
      sweep::run_supervised(cells, 2, isolation(/*timeout_s=*/2.0), nullptr);

  EXPECT_FALSE(results[0].ok);
  EXPECT_TRUE(results[0].failure.timed_out);
  EXPECT_EQ(results[0].failure.attempts, 1);
  EXPECT_NE(results[0].error.find("timed out"), std::string::npos)
      << results[0].error;

  // In-band diagnosis, not a process failure: the companion was untouched
  // by the supervisor's kill.
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[1].failure.timed_out);
  EXPECT_FALSE(results[1].failure.signaled);
  EXPECT_NE(results[1].error.find("max_cycles"), std::string::npos)
      << results[1].error;
}

TEST_F(SupervisorTest, RetryWithBackoffRecoversATransientFailure) {
  // Fail-once shim: the first child to build this workload leaves a marker
  // and aborts; the retry child sees the marker and runs the real workload.
  // make_workload runs in the child (the parent only hashes configs), so the
  // marker file is how attempts communicate across the fork boundary.
  const std::string marker = (dir_ / "first-attempt-died").string();
  sweep::Cell flaky = fast_cell();
  flaky.make_workload = [marker]() -> std::unique_ptr<apps::Workload> {
    if (!fs::exists(marker)) {
      std::FILE* f = std::fopen(marker.c_str(), "wb");
      if (f != nullptr) std::fclose(f);
      std::abort();
    }
    apps::WorkloadParams params;
    params.scale = 0.15;
    return apps::make_workload("sor", params);
  };

  std::vector<sweep::CellResult> results = sweep::run_supervised(
      {flaky}, 1, isolation(/*timeout_s=*/60.0, /*retries=*/1), nullptr);

  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[0].summary.verified);
  EXPECT_EQ(results[0].failure.attempts, 2);
  EXPECT_TRUE(fs::exists(marker));
}

TEST_F(SupervisorTest, ExhaustedRetriesQuarantineTheCell) {
  // Crashes every attempt: retries are spent, then the cell is quarantined
  // with the attempt count in the record.
  std::vector<sweep::CellResult> results = sweep::run_supervised(
      {faulted_cell("crash:1")}, 1, isolation(/*timeout_s=*/60.0, /*retries=*/2),
      nullptr);

  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].failure.attempts, 3);
  EXPECT_TRUE(results[0].failure.signaled);
}

TEST_F(SupervisorTest, InBandFailuresAreDeterministicAndNeverRetried) {
  // A watchdog trip is caught by the child and reported over the pipe — a
  // diagnosed simulation outcome, not a process failure. Even with retries
  // budgeted, one attempt settles it.
  sweep::Cell cell = fast_cell();
  cell.limits.max_cycles = 100;  // far below the ~100k-cycle run
  std::vector<sweep::CellResult> results = sweep::run_supervised(
      {cell}, 1, isolation(/*timeout_s=*/60.0, /*retries=*/3), nullptr);

  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].failure.attempts, 1);
  EXPECT_FALSE(results[0].failure.signaled);
  EXPECT_FALSE(results[0].error.empty());
}

TEST_F(SupervisorTest, ResumeReExecutesOnlyTheFailedCells) {
  sweep::ResultCache cache((dir_ / "cache").string());
  std::vector<sweep::Cell> cells = {
      fast_cell("sor", SystemKind::kNetCache),
      faulted_cell("crash:1"),
      fast_cell("sor", SystemKind::kLambdaNet),
  };

  auto run_grid = [&] {
    sweep::SweepDriver driver(2);
    for (const sweep::Cell& cell : cells) driver.submit(cell);
    driver.set_isolation(isolation());
    driver.set_result_cache(&cache);
    driver.run();
    return driver;
  };

  sweep::SweepDriver first = run_grid();
  EXPECT_EQ(first.cache_hits(), 0u);
  ASSERT_TRUE(first.result(0).ok) << first.result(0).error;
  EXPECT_FALSE(first.result(1).ok);
  ASSERT_TRUE(first.result(2).ok) << first.result(2).error;
  EXPECT_EQ(cache.stats().stores, 2u);

  // Same grid again: the healthy cells are served from the cache (no child
  // is even forked for them); only the poisoned cell re-executes.
  sweep::SweepDriver second = run_grid();
  EXPECT_EQ(second.cache_hits(), 2u);
  EXPECT_TRUE(second.result(0).from_cache);
  EXPECT_FALSE(second.result(1).ok);
  EXPECT_FALSE(second.result(1).from_cache);
  EXPECT_TRUE(second.result(2).from_cache);
  EXPECT_EQ(second.result(1).failure.attempts, 1);
  EXPECT_EQ(core::serialize_summary(first.result(0).summary),
            core::serialize_summary(second.result(0).summary));
}

TEST_F(SupervisorTest, CleanGridIsBitIdenticalToTheThreadedDriver) {
  auto build = [](sweep::SweepDriver* driver) {
    for (const char* app : {"sor", "fft"}) {
      for (SystemKind kind :
           {SystemKind::kNetCache, SystemKind::kLambdaNet}) {
        driver->submit(fast_cell(app, kind));
      }
    }
  };

  sweep::SweepDriver threaded(4);
  build(&threaded);
  threaded.set_result_cache(nullptr);
  sweep::IsolationOptions off;
  off.enabled = false;
  threaded.set_isolation(off);

  sweep::SweepDriver isolated(4);
  build(&isolated);
  isolated.set_result_cache(nullptr);
  isolated.set_isolation(isolation());

  const auto& a = threaded.run();
  const auto& b = isolated.run();
  ASSERT_EQ(a.size(), b.size());

  bench::Table ta("mode check", {"NetCache", "LambdaNet"});
  bench::Table tb("mode check", {"NetCache", "LambdaNet"});
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].error;
    EXPECT_EQ(summary_bytes_sans_wall(a[i].summary),
              summary_bytes_sans_wall(b[i].summary))
        << threaded.cell(i).label();
    ta.set(threaded.cell(i).app, to_string(threaded.cell(i).system),
           static_cast<double>(a[i].summary.run_time));
    tb.set(isolated.cell(i).app, to_string(isolated.cell(i).system),
           static_cast<double>(b[i].summary.run_time));
  }
  EXPECT_EQ(ta.to_csv(), tb.to_csv());
}

TEST(TableFailure, FailedCellsRenderAsFailedNeverAsSilentZeros) {
  bench::Table table("partial grid", {"NetCache", "LambdaNet"});
  table.set("sor", "NetCache", 1234.0);
  table.set_failed("sor", "LambdaNet");
  table.set_failed("fft", "NetCache");  // whole row known only as failed
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("sor,1234"), std::string::npos) << csv;
  EXPECT_NE(csv.find(",failed"), std::string::npos) << csv;
  EXPECT_NE(csv.find("fft,failed"), std::string::npos) << csv;
}

TEST_F(SupervisorTest, StopFlagMarksSupervisedCellsInterrupted) {
  sweep::request_stop(SIGINT);
  EXPECT_TRUE(sweep::stop_requested());
  EXPECT_EQ(sweep::stop_signal(), SIGINT);

  std::vector<sweep::CellResult> results = sweep::run_supervised(
      {fast_cell(), fast_cell("sor", SystemKind::kLambdaNet)}, 2, isolation(),
      nullptr);
  for (const sweep::CellResult& r : results) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("interrupted"), std::string::npos) << r.error;
  }

  sweep::clear_stop();
  EXPECT_FALSE(sweep::stop_requested());
  EXPECT_EQ(sweep::stop_signal(), 0);
}

TEST_F(SupervisorTest, StopFlagMarksThreadedCellsInterrupted) {
  sweep::request_stop(SIGTERM);
  sweep::SweepDriver driver(2);
  driver.submit(fast_cell());
  driver.submit(fast_cell("sor", SystemKind::kLambdaNet));
  driver.set_result_cache(nullptr);
  sweep::IsolationOptions off;
  off.enabled = false;
  driver.set_isolation(off);

  const auto& results = driver.run();
  for (const sweep::CellResult& r : results) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("interrupted"), std::string::npos) << r.error;
  }
  sweep::clear_stop();
}

TEST(AttemptTimeout, EscalatesTwoXPerRetryCappedAtEightX) {
  sweep::IsolationOptions opts;
  opts.enabled = true;
  opts.cell_timeout_s = 10.0;
  // A cell that timed out once may simply be near the budget, not hung:
  // each retry doubles the allowance so a slow-but-honest cell can finish,
  // capped at 8x so a true livelock still dies promptly.
  EXPECT_DOUBLE_EQ(sweep::attempt_timeout_s(opts, 1), 10.0);
  EXPECT_DOUBLE_EQ(sweep::attempt_timeout_s(opts, 2), 20.0);
  EXPECT_DOUBLE_EQ(sweep::attempt_timeout_s(opts, 3), 40.0);
  EXPECT_DOUBLE_EQ(sweep::attempt_timeout_s(opts, 4), 80.0);
  EXPECT_DOUBLE_EQ(sweep::attempt_timeout_s(opts, 5), 80.0);
  EXPECT_DOUBLE_EQ(sweep::attempt_timeout_s(opts, 100), 80.0);

  opts.cell_timeout_s = 0;  // no timeout configured -> none at any attempt
  EXPECT_DOUBLE_EQ(sweep::attempt_timeout_s(opts, 1), 0.0);
  EXPECT_DOUBLE_EQ(sweep::attempt_timeout_s(opts, 4), 0.0);
}

TEST_F(SupervisorTest, EscalatedRetryTimeoutRescuesASlowButHonestCell) {
  // First attempt gets a timeout the cell cannot meet; the retry's doubled
  // budget is enough. A fixed (non-escalating) timeout would fail both.
  sweep::Cell cell = fast_cell();
  std::vector<sweep::CellResult> results = sweep::run_supervised(
      {cell}, 1, isolation(/*timeout_s=*/0.005, /*retries=*/10), nullptr);
  if (results[0].ok) {
    // Escalation found a workable budget within the retry allowance.
    EXPECT_GT(results[0].failure.attempts, 1);
    EXPECT_TRUE(results[0].summary.verified);
  } else {
    // Even 8x5ms was too tight for this host; the diagnosis must still be a
    // timeout quarantine with every attempt spent.
    EXPECT_TRUE(results[0].failure.timed_out);
    EXPECT_EQ(results[0].failure.attempts, 11);
  }
}

TEST_F(SupervisorTest, SigtermMidGridLeavesNoOrphansNoTempFilesAndResumes) {
  // Signal-driven shutdown, end to end: a SIGTERM (delivered here as the
  // stop flag the handler would set) lands while the grid's hang cell holds
  // the single worker slot. The supervisor must kill and reap every child,
  // leave no half-written cache temp file, and a clean re-run must serve
  // the completed prefix from the cache.
  const fs::path cache_dir = dir_ / "cache";
  sweep::ResultCache cache(cache_dir.string());
  std::vector<sweep::Cell> cells = {
      fast_cell("sor", SystemKind::kNetCache),
      faulted_cell("hang:1"),
      fast_cell("sor", SystemKind::kLambdaNet),
  };

  std::vector<sweep::CellResult> results;
  std::thread grid([&] {
    results = sweep::run_supervised(cells, 1, isolation(/*timeout_s=*/60.0),
                                    &cache);
  });
  // Wait for cell 0 to complete (its store is the observable proof), then
  // "SIGTERM" while the hang cell burns its wall clock.
  for (int i = 0; i < 2000 && cache.stats().stores == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(cache.stats().stores, 1u) << "first cell never completed";
  sweep::request_stop(SIGTERM);
  grid.join();

  // The completed cell kept its result; everything else is interrupted.
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("interrupted"), std::string::npos)
      << results[1].error;
  EXPECT_FALSE(results[2].ok);

  // No orphans: every forked child was killed and reaped, so this process
  // has no children left at all.
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);

  // No stray temp files: the kill interrupted a run, not a cache write.
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    EXPECT_EQ(entry.path().extension(), ".ncr") << entry.path();
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << entry.path();
  }

  // Resume: the completed cell is a hit (no child forked for it); the hang
  // cell now runs against a short escalating timeout and is quarantined;
  // the never-started cell executes.
  sweep::clear_stop();
  std::vector<sweep::CellResult> resumed = sweep::run_supervised(
      cells, 1, isolation(/*timeout_s=*/1.0), &cache);
  EXPECT_TRUE(resumed[0].ok) << resumed[0].error;
  EXPECT_TRUE(resumed[0].from_cache);
  EXPECT_FALSE(resumed[1].ok);
  EXPECT_TRUE(resumed[1].failure.timed_out);
  EXPECT_TRUE(resumed[2].ok) << resumed[2].error;
  EXPECT_FALSE(resumed[2].from_cache);
  EXPECT_EQ(core::serialize_summary(resumed[0].summary),
            core::serialize_summary(results[0].summary));
}

TEST_F(SupervisorTest, InstallAndRemoveStopHandlersRoundTrip) {
  sweep::install_stop_handlers();
  // Installing twice is idempotent; a raised SIGINT sets the flag instead of
  // killing the test binary.
  sweep::install_stop_handlers();
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(sweep::stop_requested());
  EXPECT_EQ(sweep::stop_signal(), SIGINT);
  sweep::remove_stop_handlers();
  sweep::clear_stop();
}

}  // namespace
}  // namespace netcache
