// Calibration tests: the simulator's contention-free transaction latencies
// reproduce the paper's Tables 1-3 at the base 10 Gbit/s configuration.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/apps/workload.hpp"
#include "src/core/machine.hpp"

namespace netcache {
namespace {

using core::Cpu;
using core::Machine;

/// A workload whose node-0 body is supplied by the test; other nodes idle.
class Probe : public apps::Workload {
 public:
  std::function<sim::Task<void>(Machine&, Cpu&)> body;
  Machine* machine = nullptr;

  const char* name() const override { return "probe"; }
  void setup(core::Machine& m) override { machine = &m; }
  sim::Task<void> run(Cpu& cpu, int tid) override {
    if (tid == 0 && body) co_await body(*machine, cpu);
  }
  bool verify() override { return true; }
};

MachineConfig config_for(SystemKind kind) {
  MachineConfig cfg;
  cfg.nodes = 16;
  cfg.system = kind;
  return cfg;
}

/// Issues `count` cold remote reads from node 0, staggered so the TDMA
/// arrival phase is spread; returns the mean read latency.
double mean_cold_read_latency(SystemKind kind, int count = 64) {
  Machine m(config_for(kind));
  Probe probe;
  double total = 0;
  int measured = 0;
  probe.body = [&](Machine& mach, Cpu& cpu) -> sim::Task<void> {
    // Stride of 257 blocks: distinct L1/L2 sets (no evictions of previously
    // fetched lines), distinct ring channels, rotating homes.
    Addr base = mach.address_space().alloc_shared(
        static_cast<std::size_t>(count) * 257 * 64 + 64);
    for (int i = 0; measured < count; ++i) {
      Addr b = static_cast<Addr>(257) * i + 1;
      if (b % 16 == 0) continue;  // skip blocks homed at the reading node
      Cycles t0 = cpu.now();
      co_await cpu.read(base + b * 64);
      total += static_cast<double>(cpu.now() - t0);
      ++measured;
      // Stagger so arrival phases decorrelate from the 16-cycle TDMA frame
      // and the 40-cycle ring roundtrip.
      co_await cpu.compute(1 + (i * 13) % 23);
    }
  };
  m.run(probe);
  return total / count;
}

/// Mean latency from write issue to write-buffer drain completion (the
/// coherence transaction), 8 words per update.
double mean_update_latency(SystemKind kind, int count = 32) {
  Machine m(config_for(kind));
  Probe probe;
  double total = 0;
  probe.body = [&](Machine& mach, Cpu& cpu) -> sim::Task<void> {
    Addr base = mach.address_space().alloc_shared(
        static_cast<std::size_t>(count) * 257 * 64 + 64);
    int measured = 0;
    for (int i = 0; measured < count; ++i) {
      Addr b = static_cast<Addr>(257) * i + 1;
      if (b % 16 == 0) continue;
      Addr a = base + b * 64;
      // Warm the block into the L2 first (Table 3 assumes a write hit; a
      // DMON-I write miss would fold in a whole block fetch).
      co_await cpu.read(a);
      co_await cpu.compute(2 + (i * 7) % 19);
      Cycles t0 = cpu.now();
      co_await cpu.write(a, 32);  // 8 dirty words
      co_await cpu.node().fence();
      total += static_cast<double>(cpu.now() - t0);
      ++measured;
      co_await cpu.compute(1 + (i * 13) % 23);
    }
  };
  m.run(probe);
  // Subtract the 1-cycle write-buffer insertion; the remainder is the
  // coherence transaction.
  return total / count - 1.0;
}

// ---- Table 1: NetCache ----------------------------------------------------

TEST(Table1, NetCacheSharedCacheMissIs119) {
  // 1+4 + TDMA(avg 8)+1 + 1 + 76 + 11 + 1 + 16 = 119.
  double mean = mean_cold_read_latency(SystemKind::kNetCache);
  EXPECT_NEAR(mean, 119.0, 2.5);
}

TEST(Table1, NetCacheSharedCacheHitIs46) {
  // 1 + 4 + avg ring delay 25 + 16 = 46. Warm the ring from node 1, then
  // read the same blocks from node 0 (whose L2 does not hold them).
  Machine m(config_for(SystemKind::kNetCache));
  const int count = 64;
  double total = 0;
  int measured = 0;
  struct TwoPhase : apps::Workload {
    Machine* machine = nullptr;
    Addr base = 0;
    int count = 0;
    double* total = nullptr;
    int* measured = nullptr;
    core::Barrier* bar = nullptr;
    const char* name() const override { return "two-phase"; }
    void setup(core::Machine& mm) override {
      machine = &mm;
      base = mm.address_space().alloc_shared(
          static_cast<std::size_t>(count) * 17 * 64 + 4096);
      bar = &mm.make_barrier(mm.nodes());
    }
    std::vector<Addr> probe_addrs() const {
      // Blocks on distinct ring channels (17 is coprime to 128) whose home
      // is neither node 0 (the reader) nor node 1 (the warmer).
      std::vector<Addr> addrs;
      for (int i = 0; addrs.size() < static_cast<std::size_t>(count); ++i) {
        Addr b = static_cast<Addr>(17) * i + 2;
        if (b % 16 == 0 || b % 16 == 1) continue;
        addrs.push_back(base + b * 64);
      }
      return addrs;
    }

    sim::Task<void> run(Cpu& cpu, int tid) override {
      std::vector<Addr> addrs = probe_addrs();
      if (tid == 1) {
        for (Addr a : addrs) co_await cpu.read(a);
      }
      co_await bar->wait(cpu);
      if (tid == 0) {
        int i = 0;
        for (Addr a : addrs) {
          Cycles t0 = cpu.now();
          co_await cpu.read(a);
          *total += static_cast<double>(cpu.now() - t0);
          ++*measured;
          co_await cpu.compute(1 + (i++ * 13) % 23);
        }
      }
    }
    bool verify() override { return true; }
  };
  TwoPhase wl;
  wl.count = count;
  wl.total = &total;
  wl.measured = &measured;
  auto summary = m.run(wl);
  ASSERT_EQ(measured, count);
  EXPECT_NEAR(total / count, 46.0, 2.5);
  // All of node 0's misses were shared-cache hits.
  EXPECT_EQ(summary.totals.shared_cache_hits, static_cast<std::uint64_t>(count));
}

// ---- Table 2: LambdaNet and DMON -------------------------------------------

TEST(Table2, LambdaNetSecondLevelMissIs111) {
  // Deterministic path: 1+4+1+1+76+11+1+16 = 111 with no arbitration.
  double mean = mean_cold_read_latency(SystemKind::kLambdaNet);
  EXPECT_DOUBLE_EQ(mean, 111.0);
}

TEST(Table2, DmonSecondLevelMissIs135) {
  // Two TDMA waits (avg 8 each) + reservation + tuning + ... = 135 average.
  EXPECT_NEAR(mean_cold_read_latency(SystemKind::kDmonUpdate), 135.0, 3.0);
  EXPECT_NEAR(mean_cold_read_latency(SystemKind::kDmonInvalidate), 135.0,
              3.0);
}

TEST(Table2, NetCacheNoRingMissMatchesNetCacheMissPath) {
  EXPECT_NEAR(mean_cold_read_latency(SystemKind::kNetCacheNoRing), 119.0,
              2.5);
}

// ---- Table 3: coherence transactions ---------------------------------------

TEST(Table3, NetCacheCoherenceTransactionIs41) {
  EXPECT_NEAR(mean_update_latency(SystemKind::kNetCache), 41.0, 3.0);
}

TEST(Table3, LambdaNetCoherenceTransactionIs24) {
  EXPECT_DOUBLE_EQ(mean_update_latency(SystemKind::kLambdaNet), 24.0);
}

TEST(Table3, DmonUCoherenceTransactionIs43) {
  EXPECT_NEAR(mean_update_latency(SystemKind::kDmonUpdate), 43.0, 3.0);
}

TEST(Table3, DmonICoherenceTransactionIs37) {
  EXPECT_NEAR(mean_update_latency(SystemKind::kDmonInvalidate), 37.0, 3.0);
}

// ---- Rate-derived message times --------------------------------------------

TEST(LatencyParams, RateDerivedConstantsAtBaseRate) {
  MachineConfig cfg;
  LatencyParams lp = derive_latencies(cfg);
  EXPECT_DOUBLE_EQ(lp.bits_per_cycle, 50.0);
  EXPECT_EQ(lp.block_transfer, 11);        // Table 1 row 7 / Table 2 row 11
  EXPECT_EQ(lp.dmon_block_transfer, 12);   // Table 2 DMON column
  EXPECT_EQ(lp.invalidate_message, 2);     // Table 3 DMON-I row 5
  EXPECT_EQ(lp.update_message(8, false), 7);  // Table 3 LambdaNet row 5
  EXPECT_EQ(lp.update_message(8, true), 8);   // Table 3 NetCache/DMON-U row 5
  EXPECT_EQ(lp.ring_roundtrip, 40);
}

TEST(LatencyParams, ScalesWithTransmissionRate) {
  MachineConfig cfg;
  cfg.gbit_per_s = 5.0;
  LatencyParams lp5 = derive_latencies(cfg);
  EXPECT_EQ(lp5.block_transfer, 21);
  EXPECT_EQ(lp5.ring_roundtrip, 80);
  cfg.gbit_per_s = 20.0;
  LatencyParams lp20 = derive_latencies(cfg);
  EXPECT_EQ(lp20.block_transfer, 6);
  EXPECT_EQ(lp20.ring_roundtrip, 20);
}

}  // namespace
}  // namespace netcache
