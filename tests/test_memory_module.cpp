#include "src/memory/memory_module.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.hpp"

namespace netcache::memory {
namespace {

TEST(MemoryModule, SingleReadTakesBlockLatency) {
  sim::Engine eng;
  MemoryModule mem(eng, 76, 8);
  Cycles done = -1;
  auto r = [&]() -> sim::Task<void> {
    co_await mem.read_block();
    done = eng.now();
  };
  eng.spawn(r());
  eng.run();
  EXPECT_EQ(done, 76);
}

TEST(MemoryModule, ConcurrentReadsSerialize) {
  sim::Engine eng;
  MemoryModule mem(eng, 76, 8);
  std::vector<Cycles> done;
  auto r = [&]() -> sim::Task<void> {
    co_await mem.read_block();
    done.push_back(eng.now());
  };
  for (int i = 0; i < 3; ++i) eng.spawn(r());
  eng.run();
  EXPECT_EQ(done, (std::vector<Cycles>{76, 152, 228}));
  EXPECT_EQ(mem.contention_cycles(), 76 + 152);
}

TEST(MemoryModule, UpdateAckImmediateBelowHysteresis) {
  sim::Engine eng;
  MemoryModule mem(eng, 76, 4);
  Cycles acked = -1;
  auto u = [&]() -> sim::Task<void> {
    co_await mem.enqueue_update(8);
    acked = eng.now();
  };
  eng.spawn(u());
  eng.run();
  EXPECT_EQ(acked, 0);  // queued instantly; applied in background
  EXPECT_EQ(mem.acks_delayed(), 0u);
}

TEST(MemoryModule, AckWithheldPastHysteresis) {
  sim::Engine eng;
  MemoryModule mem(eng, 76, 2);
  std::vector<Cycles> acks;
  auto u = [&]() -> sim::Task<void> {
    co_await mem.enqueue_update(8);  // 8 cycles of service each
    acks.push_back(eng.now());
  };
  for (int i = 0; i < 4; ++i) eng.spawn(u());
  eng.run();
  ASSERT_EQ(acks.size(), 4u);
  // First two fit under the hysteresis point; the third waits for the
  // first to drain (t=8), the fourth for the second (t=16).
  EXPECT_EQ(acks[0], 0);
  EXPECT_EQ(acks[1], 0);
  EXPECT_EQ(acks[2], 8);
  EXPECT_EQ(acks[3], 16);
  EXPECT_EQ(mem.acks_delayed(), 2u);
}

TEST(MemoryModule, ReadsDoNotQueueBehindUpdates) {
  // Dual-ported: the home can reply to a block request immediately even
  // with updates queued (the update protocols' stated assumption).
  sim::Engine eng;
  MemoryModule mem(eng, 76, 8);
  Cycles read_done = -1;
  auto u = [&]() -> sim::Task<void> { co_await mem.enqueue_update(8); };
  auto r = [&]() -> sim::Task<void> {
    co_await eng.delay(1);
    co_await mem.read_block();
    read_done = eng.now();
  };
  eng.spawn(u());
  eng.spawn(r());
  eng.run();
  EXPECT_EQ(read_done, 1 + 76);
}

TEST(MemoryModule, MinimumUpdateService) {
  EXPECT_EQ(MemoryModule::update_service(1), 2);
  EXPECT_EQ(MemoryModule::update_service(2), 2);
  EXPECT_EQ(MemoryModule::update_service(16), 16);
}

TEST(MemoryModule, WaitDrainedBlocksUntilQuiet) {
  sim::Engine eng;
  MemoryModule mem(eng, 76, 8);
  Cycles drained = -1;
  auto u = [&]() -> sim::Task<void> { co_await mem.enqueue_update(16); };
  auto w = [&]() -> sim::Task<void> {
    co_await eng.delay(1);
    co_await mem.wait_drained();
    drained = eng.now();
  };
  eng.spawn(u());
  eng.spawn(w());
  eng.run();
  EXPECT_EQ(drained, 16);
}

TEST(MemoryModule, WritebackOccupiesWritePort) {
  sim::Engine eng;
  MemoryModule mem(eng, 76, 8);
  Cycles drained = -1;
  auto wb = [&]() -> sim::Task<void> { co_await mem.write_back_block(16); };
  auto w = [&]() -> sim::Task<void> {
    co_await eng.delay(1);
    co_await mem.wait_drained();
    drained = eng.now();
  };
  eng.spawn(wb());
  eng.spawn(w());
  eng.run();
  EXPECT_EQ(drained, 16);
}

TEST(MemoryModule, DirectoryAccessIsShortButSerialized) {
  sim::Engine eng;
  MemoryModule mem(eng, 76, 8);
  std::vector<Cycles> done;
  auto d = [&]() -> sim::Task<void> {
    co_await mem.directory_access();
    done.push_back(eng.now());
  };
  eng.spawn(d());
  eng.spawn(d());
  eng.run();
  EXPECT_EQ(done, (std::vector<Cycles>{4, 8}));
}

}  // namespace
}  // namespace netcache::memory
