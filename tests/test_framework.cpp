// Tests of the workload framework: partitioning properties, simulated
// array addressing, and functional/timing consistency.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/apps/workload.hpp"
#include "src/core/machine.hpp"

namespace netcache::apps {
namespace {

class PartitionProps
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionProps, CoversDisjointlyAndBalanced) {
  const auto& [count, threads] = GetParam();
  std::vector<int> owner(static_cast<std::size_t>(count), -1);
  std::size_t min_len = static_cast<std::size_t>(count) + 1;
  std::size_t max_len = 0;
  for (int t = 0; t < threads; ++t) {
    Range r = partition(static_cast<std::size_t>(count), t, threads);
    ASSERT_LE(r.begin, r.end);
    ASSERT_LE(r.end, static_cast<std::size_t>(count));
    for (std::size_t i = r.begin; i < r.end; ++i) {
      ASSERT_EQ(owner[i], -1) << "overlap at " << i;
      owner[i] = t;
    }
    min_len = std::min(min_len, r.end - r.begin);
    max_len = std::max(max_len, r.end - r.begin);
  }
  for (int i = 0; i < count; ++i) {
    ASSERT_NE(owner[static_cast<std::size_t>(i)], -1) << "gap at " << i;
  }
  EXPECT_LE(max_len - min_len, 1u) << "imbalanced partition";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionProps,
    ::testing::Combine(::testing::Values(0, 1, 5, 16, 17, 100, 1000),
                       ::testing::Values(1, 2, 3, 7, 16, 32)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SharedArrayAddressing, ContiguousAndAligned) {
  MachineConfig cfg;
  cfg.nodes = 4;
  core::Machine m(cfg);
  SharedArray<double> a;
  a.allocate(m, 100);
  EXPECT_EQ(a.addr(0) % 64, 0u);
  for (std::size_t i = 1; i < 100; ++i) {
    EXPECT_EQ(a.addr(i) - a.addr(i - 1), sizeof(double));
  }
  SharedArray<float> b;
  b.allocate(m, 10);
  // Different arrays never overlap.
  EXPECT_GE(b.addr(0), a.addr(99) + sizeof(double));
}

TEST(SharedArrayAddressing, TimedAccessesReturnFunctionalValues) {
  MachineConfig cfg;
  cfg.nodes = 2;
  core::Machine m(cfg);

  struct Wl : Workload {
    SharedArray<int> arr;
    bool ok = true;
    const char* name() const override { return "arr"; }
    void setup(core::Machine& mm) override {
      arr.allocate(mm, 64);
      for (int i = 0; i < 64; ++i) arr.raw(static_cast<std::size_t>(i)) = i;
    }
    sim::Task<void> run(core::Cpu& cpu, int tid) override {
      if (tid != 0) co_return;
      for (int i = 0; i < 64; ++i) {
        int v = co_await arr.rd(cpu, static_cast<std::size_t>(i));
        if (v != i) ok = false;
        co_await arr.wr(cpu, static_cast<std::size_t>(i), v * 2);
      }
      for (int i = 0; i < 64; ++i) {
        if ((co_await arr.rd(cpu, static_cast<std::size_t>(i))) != 2 * i) {
          ok = false;
        }
      }
    }
    bool verify() override { return ok; }
  };
  Wl wl;
  EXPECT_TRUE(m.run(wl).verified);
}

TEST(PrivateArrayAddressing, MapsToOwnersMemory) {
  MachineConfig cfg;
  cfg.nodes = 4;
  core::Machine m(cfg);
  PrivateArray<int> p;
  p.allocate(m, 2, 32);
  EXPECT_TRUE(m.address_space().is_private(p.addr(0)));
  EXPECT_EQ(m.address_space().home(p.addr(0)), 2);
  EXPECT_EQ(m.address_space().home(p.addr(31)), 2);
}

TEST(WorkloadParams, PaperSizeIsLargerThanDefault) {
  // Spot-check that the paper_size flag actually enlarges the inputs.
  for (const char* app : {"fft", "radix", "wf"}) {
    MachineConfig cfg;
    cfg.nodes = 16;
    cfg.system = SystemKind::kLambdaNet;
    WorkloadParams small;
    small.scale = 0.2;
    core::Machine ms(cfg);
    auto w1 = make_workload(app, small);
    auto s1 = ms.run(*w1);
    WorkloadParams paper;
    paper.paper_size = true;
    core::Machine mp(cfg);
    auto w2 = make_workload(app, paper);
    auto s2 = mp.run(*w2);
    EXPECT_GT(s2.totals.reads, s1.totals.reads) << app;
    EXPECT_TRUE(s2.verified) << app;
  }
}

}  // namespace
}  // namespace netcache::apps
