#include "src/net/netcache/ring_cache.hpp"

#include <gtest/gtest.h>

#include <set>

namespace netcache::net {
namespace {

RingConfig base_ring() {
  RingConfig r;
  r.channels = 128;
  r.blocks_per_channel = 4;
  r.block_bytes = 64;
  return r;
}

Addr blk(int n) { return static_cast<Addr>(n) * 64; }

TEST(RingCache, GeometryMatchesPaper) {
  EXPECT_EQ(base_ring().capacity_bytes(), 32 * 1024);
}

TEST(RingCache, ChannelAssignmentInterleaves) {
  Rng rng(1);
  RingCache ring(base_ring(), 40, 5, 16, 64, rng);
  EXPECT_EQ(ring.channel_of(blk(0)), 0);
  EXPECT_EQ(ring.channel_of(blk(1)), 1);
  EXPECT_EQ(ring.channel_of(blk(129)), 1);
  // Channel and home interleaving are consistent: channel mod nodes == home.
  EXPECT_EQ(ring.channel_of(blk(35)) % 16, 35 % 16);
}

TEST(RingCache, InsertThenContains) {
  Rng rng(1);
  RingCache ring(base_ring(), 40, 5, 16, 64, rng);
  EXPECT_FALSE(ring.contains(blk(5)));
  ring.insert(blk(5), 0);
  EXPECT_TRUE(ring.contains(blk(5)));
  ring.drop(blk(5));
  EXPECT_FALSE(ring.contains(blk(5)));
}

TEST(RingCache, ArrivalDependsOnRotationPhase) {
  Rng rng(1);
  RingCache ring(base_ring(), 40, 5, 16, 64, rng);
  ring.insert(blk(0), 0);  // channel 0, first slot (index 0)
  // Node 0 sits at phase 0; slot 0 passes at t % 40 == 0.
  auto a = ring.arrival_time(blk(0), 0, 3);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 40 + 5);
  // Node 8 sits half a ring away (phase 20).
  auto b = ring.arrival_time(blk(0), 8, 0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 20 + 5);
  // At exactly the passage instant the read completes with only overhead.
  auto c = ring.arrival_time(blk(0), 0, 40);
  EXPECT_EQ(*c, 45);
}

TEST(RingCache, ArrivalAveragesHalfRoundtrip) {
  Rng rng(1);
  RingCache ring(base_ring(), 40, 5, 16, 64, rng);
  ring.insert(blk(0), 0);
  Cycles total = 0;
  for (Cycles t = 0; t < 40; ++t) {
    total += *ring.arrival_time(blk(0), 0, t) - t;
  }
  // Mean delay = roundtrip/2 + overhead + 0.5 => Table 1's "avg 25".
  EXPECT_NEAR(static_cast<double>(total) / 40.0, 25.0, 1.0);
}

TEST(RingCache, MissReturnsNullopt) {
  Rng rng(1);
  RingCache ring(base_ring(), 40, 5, 16, 64, rng);
  EXPECT_FALSE(ring.arrival_time(blk(7), 0, 0).has_value());
}

TEST(RingCache, FullChannelReplaces) {
  Rng rng(1);
  RingCache ring(base_ring(), 40, 5, 16, 64, rng);
  // Blocks 0, 128, 256, 384 all map to channel 0.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(ring.insert(blk(i * 128), 0).has_value());
  }
  auto evicted = ring.insert(blk(512), 10);
  ASSERT_TRUE(evicted.has_value());
  std::set<Addr> originals{blk(0), blk(128), blk(256), blk(384)};
  EXPECT_TRUE(originals.count(*evicted));
  EXPECT_FALSE(ring.contains(*evicted));
  EXPECT_TRUE(ring.contains(blk(512)));
  EXPECT_EQ(ring.replacements(), 1u);
}

TEST(RingCache, LruPolicyEvictsColdest) {
  Rng rng(1);
  RingConfig cfg = base_ring();
  cfg.replacement = RingReplacement::kLru;
  RingCache ring(cfg, 40, 5, 16, 64, rng);
  for (int i = 0; i < 4; ++i) ring.insert(blk(i * 128), i);
  ring.touch(blk(0), 100);
  ring.touch(blk(128), 101);
  ring.touch(blk(384), 102);
  auto evicted = ring.insert(blk(512), 200);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, blk(256));
}

TEST(RingCache, LfuPolicyEvictsLeastUsed) {
  Rng rng(1);
  RingConfig cfg = base_ring();
  cfg.replacement = RingReplacement::kLfu;
  RingCache ring(cfg, 40, 5, 16, 64, rng);
  for (int i = 0; i < 4; ++i) ring.insert(blk(i * 128), i);
  for (int k = 0; k < 5; ++k) ring.touch(blk(0), 10 + k);
  ring.touch(blk(128), 20);
  ring.touch(blk(256), 21);
  // blk(384) has only its insertion use.
  auto evicted = ring.insert(blk(512), 200);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, blk(384));
}

TEST(RingCache, FifoPolicyEvictsOldestInsert) {
  Rng rng(1);
  RingConfig cfg = base_ring();
  cfg.replacement = RingReplacement::kFifo;
  RingCache ring(cfg, 40, 5, 16, 64, rng);
  for (int i = 0; i < 4; ++i) ring.insert(blk(i * 128), i);
  ring.touch(blk(0), 1000);  // recency is irrelevant to FIFO
  auto evicted = ring.insert(blk(512), 200);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, blk(0));
}

TEST(RingCache, DirectMappedForcesSlot) {
  Rng rng(1);
  RingConfig cfg = base_ring();
  cfg.associativity = RingAssociativity::kDirectMapped;
  RingCache ring(cfg, 40, 5, 16, 64, rng);
  // Blocks 0 and 512 both map to channel 0 slot 0; 128 maps to slot 1.
  ring.insert(blk(0), 0);
  ring.insert(blk(128), 0);
  auto evicted = ring.insert(blk(512), 1);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, blk(0));
  EXPECT_TRUE(ring.contains(blk(128)));
}

TEST(RingCache, ReinsertRefreshesInsteadOfDuplicating) {
  Rng rng(1);
  RingCache ring(base_ring(), 40, 5, 16, 64, rng);
  ring.insert(blk(3), 0);
  EXPECT_FALSE(ring.insert(blk(3), 50).has_value());
  EXPECT_EQ(ring.insertions(), 1u);
}

TEST(RingCache, RefreshDelaysAvailability) {
  Rng rng(1);
  RingCache ring(base_ring(), 40, 5, 16, 64, rng);
  ring.insert(blk(0), 0);
  EXPECT_TRUE(ring.refresh(blk(0), 100));
  auto a = ring.arrival_time(blk(0), 0, 50);
  ASSERT_TRUE(a.has_value());
  EXPECT_GE(*a, 100);
  EXPECT_FALSE(ring.refresh(blk(9999 * 64), 100));
}

TEST(RingCache, SizeScalingViaChannels) {
  // Figure 8's cache sizes: 64 / 128 / 256 channels = 16/32/64 KB.
  for (int ch : {64, 128, 256}) {
    RingConfig cfg = base_ring();
    cfg.channels = ch;
    EXPECT_EQ(cfg.capacity_bytes(), ch * 4 * 64);
  }
}

}  // namespace
}  // namespace netcache::net
