#include "src/core/address_space.hpp"

#include <gtest/gtest.h>

namespace netcache::core {
namespace {

TEST(AddressSpace, SharedBlocksInterleaveAcrossHomes) {
  AddressSpace as(16, 64);
  Addr base = as.alloc_shared(64 * 32);
  EXPECT_EQ(base, 0u);
  for (int b = 0; b < 32; ++b) {
    EXPECT_EQ(as.home(base + static_cast<Addr>(b) * 64), b % 16);
  }
}

TEST(AddressSpace, AllocationsAreBlockAligned) {
  AddressSpace as(4, 64);
  Addr a = as.alloc_shared(10);
  Addr b = as.alloc_shared(100);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_EQ(b, 64u);  // 10 bytes rounded up to one block
}

TEST(AddressSpace, PrivateAddressesCarryOwner) {
  AddressSpace as(16, 64);
  for (NodeId n = 0; n < 16; ++n) {
    Addr p = as.alloc_private(n, 128);
    EXPECT_TRUE(as.is_private(p));
    EXPECT_EQ(as.home(p), n);
  }
}

TEST(AddressSpace, PrivateRegionsPerNodeAreIndependent) {
  AddressSpace as(4, 64);
  Addr a0 = as.alloc_private(0, 64);
  Addr a1 = as.alloc_private(1, 64);
  Addr a0b = as.alloc_private(0, 64);
  EXPECT_NE(a0, a1);
  EXPECT_EQ(a0b - a0, 64u);
}

TEST(AddressSpace, SharedIsNotPrivate) {
  AddressSpace as(4, 64);
  EXPECT_FALSE(as.is_private(as.alloc_shared(64)));
}

TEST(AddressSpace, SingleNodeOwnsEverything) {
  AddressSpace as(1, 64);
  Addr a = as.alloc_shared(64 * 10);
  for (int b = 0; b < 10; ++b) {
    EXPECT_EQ(as.home(a + static_cast<Addr>(b) * 64), 0);
  }
}

TEST(AddressSpace, TracksSharedBytes) {
  AddressSpace as(4, 64);
  as.alloc_shared(64);
  as.alloc_shared(128);
  EXPECT_EQ(as.shared_bytes_allocated(), 192u);
}

}  // namespace
}  // namespace netcache::core
