// Property tests of the paper's qualitative results (Section 5) at the
// repository's default workload sizes. These assert the *shapes* the
// reproduction must preserve: who wins, and which reuse class each
// application falls into.
#include <gtest/gtest.h>

#include "src/apps/workload.hpp"
#include "src/core/machine.hpp"

namespace netcache {
namespace {

core::RunSummary run_app(const std::string& app, SystemKind kind,
                         int nodes = 16, double scale = 1.0) {
  MachineConfig cfg;
  cfg.nodes = nodes;
  cfg.system = kind;
  core::Machine m(cfg);
  apps::WorkloadParams p;
  p.scale = scale;
  auto w = apps::make_workload(app, p);
  return m.run(*w);
}

TEST(PaperShapes, NetCacheBeatsLambdaNetOnHighReuseMg) {
  auto nc = run_app("mg", SystemKind::kNetCache);
  auto ln = run_app("mg", SystemKind::kLambdaNet);
  EXPECT_TRUE(nc.verified && ln.verified);
  // Paper Figure 6: High-reuse applications gain a lot from the ring.
  EXPECT_LT(nc.run_time * 1.2, ln.run_time);
}

TEST(PaperShapes, NetCacheRoughlyTiesLambdaNetOnLowReuseFft) {
  auto nc = run_app("fft", SystemKind::kNetCache);
  auto ln = run_app("fft", SystemKind::kLambdaNet);
  // Paper Figure 6: Em3d/FFT/Radix show equivalent performance.
  // Measured fidelity band: the reproduction tracks the paper's
  // "equivalent performance" Low-reuse group to within ~25% either way
  // (see EXPERIMENTS.md for the per-app numbers).
  double ratio = static_cast<double>(nc.run_time) /
                 static_cast<double>(ln.run_time);
  EXPECT_LT(ratio, 1.30);
  EXPECT_GT(ratio, 0.70);
}

TEST(PaperShapes, HitRateClassesHold) {
  // Paper Section 5.2: Low-reuse < 32%, High-reuse ~70%.
  EXPECT_LT(run_app("fft", SystemKind::kNetCache).shared_cache_hit_rate,
            0.32);
  EXPECT_LT(run_app("em3d", SystemKind::kNetCache).shared_cache_hit_rate,
            0.35);
  EXPECT_GT(run_app("mg", SystemKind::kNetCache).shared_cache_hit_rate, 0.55);
}

TEST(PaperShapes, RingIsWhatMakesNetCacheWin) {
  // Without the ring, NetCache performs about like LambdaNet (Section 5.1:
  // "a little worse, 1% on average").
  auto with_ring = run_app("mg", SystemKind::kNetCache);
  auto without = run_app("mg", SystemKind::kNetCacheNoRing);
  EXPECT_LT(with_ring.run_time, without.run_time);
  auto ln = run_app("mg", SystemKind::kLambdaNet);
  double ratio = static_cast<double>(without.run_time) /
                 static_cast<double>(ln.run_time);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.20);
}

TEST(PaperShapes, OceanSpeedsUpOnSixteenNodes) {
  auto p1 = run_app("ocean", SystemKind::kNetCache, 1);
  auto p16 = run_app("ocean", SystemKind::kNetCache, 16);
  EXPECT_TRUE(p1.verified && p16.verified);
  double speedup = static_cast<double>(p1.run_time) /
                   static_cast<double>(p16.run_time);
  EXPECT_GT(speedup, 4.0);
  // Superlinear speedups are in-paper behaviour (Em3d reaches 23.4x when
  // single-node caches thrash); just bound it sanely.
  EXPECT_LT(speedup, 32.0);
}

TEST(PaperShapes, LargerSharedCacheNeverHurtsHitRate) {
  // Figure 8's monotonicity, checked on a Moderate-reuse app.
  MachineConfig cfg;
  cfg.nodes = 16;
  cfg.system = SystemKind::kNetCache;
  double prev = -1.0;
  for (int channels : {64, 128, 256}) {
    cfg.ring.channels = channels;
    core::Machine m(cfg);
    apps::WorkloadParams p;
    auto w = apps::make_workload("ocean", p);
    auto s = m.run(*w);
    EXPECT_TRUE(s.verified);
    EXPECT_GE(s.shared_cache_hit_rate + 0.02, prev) << channels;
    prev = s.shared_cache_hit_rate;
  }
}

TEST(PaperShapes, MemoryLatencyHurtsNetCacheLess) {
  // Figure 15: increasing the memory block read latency widens NetCache's
  // advantage (checked on a High-reuse app at reduced scale).
  auto runtime = [](SystemKind kind, Cycles mem) {
    MachineConfig cfg;
    cfg.nodes = 16;
    cfg.system = kind;
    cfg.mem_block_read_cycles = mem;
    core::Machine m(cfg);
    apps::WorkloadParams p;
    p.scale = 0.4;
    auto w = apps::make_workload("gauss", p);
    return m.run(*w).run_time;
  };
  double nc_growth = static_cast<double>(runtime(SystemKind::kNetCache, 108)) /
                     static_cast<double>(runtime(SystemKind::kNetCache, 44));
  double ln_growth =
      static_cast<double>(runtime(SystemKind::kLambdaNet, 108)) /
      static_cast<double>(runtime(SystemKind::kLambdaNet, 44));
  EXPECT_LT(nc_growth, ln_growth);
}

}  // namespace
}  // namespace netcache
