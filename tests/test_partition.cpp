// Conservative-PDES partition layer tests (src/sim/partition.hpp): the
// bit-identity contract (--intra-jobs never changes results), lookahead
// validation, cross-partition deadlock diagnosis, and fault-injection
// determinism across thread counts. See DESIGN.md section 13.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/workload.hpp"
#include "src/common/config.hpp"
#include "src/common/sim_error.hpp"
#include "src/core/machine.hpp"
#include "src/core/run_summary.hpp"
#include "src/core/sync.hpp"
#include "src/sim/partition.hpp"
#include "src/sweep/sweep.hpp"

namespace netcache {
namespace {

using core::Machine;
using core::RunSummary;

// This binary needs true serial baselines (intra_jobs = 1 means one thread,
// not "whatever the CI job exported"), so drop the environment opt-in before
// any Machine is built. EnvironmentOptIn sets and restores its own value.
const bool g_env_cleared = [] {
  unsetenv("NETCACHE_INTRA_JOBS");
  return true;
}();

constexpr SystemKind kAllSystems[] = {
    SystemKind::kNetCache, SystemKind::kNetCacheNoRing, SystemKind::kLambdaNet,
    SystemKind::kDmonUpdate, SystemKind::kDmonInvalidate};

/// The whole serialized summary minus wall-clock (host observability, the
/// one field the determinism contract excepts).
std::string canonical(RunSummary s) {
  s.wall_seconds = 0.0;
  return core::serialize_summary(s);
}

RunSummary run_app(const std::string& app, SystemKind system, int intra_jobs,
                   double scale = 0.1, const std::string& faults = "") {
  MachineConfig cfg;
  cfg.nodes = 16;
  cfg.system = system;
  cfg.intra_jobs = intra_jobs;
  if (!faults.empty()) {
    cfg.faults.spec = faults;
    cfg.verify = true;
  }
  Machine machine(cfg);
  apps::WorkloadParams params;
  params.scale = scale;
  auto workload = apps::make_workload(app, params);
  return machine.run(*workload);
}

TEST(Lookahead, NonPositiveDeclarationsAreRejected) {
  EXPECT_THROW(sim::validated_lookahead(0, "TestNet"), ConfigError);
  EXPECT_THROW(sim::validated_lookahead(-3, "TestNet"), ConfigError);
  EXPECT_EQ(sim::validated_lookahead(5, "TestNet"), 5);
  try {
    sim::validated_lookahead(0, "TestNet");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("TestNet"), std::string::npos);
  }
}

TEST(Lookahead, EveryStackDeclaresAPositiveLookahead) {
  for (SystemKind system : kAllSystems) {
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.system = system;
    Machine machine(cfg);
    EXPECT_GT(machine.interconnect().lookahead(), 0)
        << machine.interconnect().name();
    // What Machine::run would do — must accept every shipped stack.
    EXPECT_NO_THROW(sim::validated_lookahead(
        machine.interconnect().lookahead(), machine.interconnect().name()));
  }
}

TEST(PartitionConfig, IntraJobsValidation) {
  MachineConfig cfg;
  cfg.intra_jobs = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.intra_jobs = -2;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.intra_jobs = 2000;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.intra_jobs = 8;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PartitionConfig, EnvironmentOptIn) {
  ASSERT_EQ(setenv("NETCACHE_INTRA_JOBS", "3", 1), 0);
  MachineConfig cfg;
  cfg.nodes = 8;
  Machine machine(cfg);
  unsetenv("NETCACHE_INTRA_JOBS");
  EXPECT_EQ(machine.config().intra_jobs, 3);
  // An explicit setting is not overridden by the environment.
  ASSERT_EQ(setenv("NETCACHE_INTRA_JOBS", "7", 1), 0);
  MachineConfig explicit_cfg;
  explicit_cfg.nodes = 8;
  explicit_cfg.intra_jobs = 2;
  Machine explicit_machine(explicit_cfg);
  unsetenv("NETCACHE_INTRA_JOBS");
  EXPECT_EQ(explicit_machine.config().intra_jobs, 2);
}

TEST(PartitionConfig, ThreadsClampToNodeCount) {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.intra_jobs = 8;
  Machine machine(cfg);
  apps::WorkloadParams params;
  params.scale = 0.05;
  auto workload = apps::make_workload("fft", params);
  RunSummary s = machine.run(*workload);
  EXPECT_TRUE(s.verified);
  ASSERT_TRUE(machine.engine().partitioned());
  EXPECT_EQ(machine.engine().partitions()->threads(), 2);
}

TEST(PartitionConfig, ComposeRuleInvariants) {
  // jobs x intra never exceeds the hardware (at least 1 intra thread).
  for (int jobs : {1, 2, 4, 8, 16}) {
    for (int intra : {1, 2, 4, 8}) {
      int composed = sweep::compose_intra_jobs(jobs, intra);
      EXPECT_GE(composed, 1);
      EXPECT_LE(composed, intra);
      unsigned hw = std::thread::hardware_concurrency();
      int budget = static_cast<int>(hw >= 1 ? hw : 1);
      if (composed > 1) {
        EXPECT_LE(jobs * composed, budget);
      }
    }
  }
  EXPECT_EQ(sweep::compose_intra_jobs(1, 1), 1);
}

// The tentpole contract: a partitioned run is bit-identical to the serial
// engine — the full serialized RunSummary (events, run_time, every stat,
// histogram quantiles, timing-wheel counters), not just a spot check.
TEST(PartitionIdentity, EverySystemAtTwoAndFourThreads) {
  for (SystemKind system : kAllSystems) {
    RunSummary serial = run_app("fft", system, 1);
    ASSERT_TRUE(serial.verified) << serial.system;
    const std::string want = canonical(serial);
    for (int threads : {2, 4}) {
      RunSummary part = run_app("fft", system, threads);
      EXPECT_EQ(canonical(part), want)
          << serial.system << " diverged at intra_jobs=" << threads;
    }
  }
}

TEST(PartitionIdentity, EveryAppOnNetCacheAtFourThreads) {
  for (const char* app : {"cg", "em3d", "fft", "gauss", "lu", "mg", "ocean",
                          "radix", "raytrace", "sor", "water", "wf"}) {
    RunSummary serial = run_app(app, SystemKind::kNetCache, 1, 0.05);
    ASSERT_TRUE(serial.verified) << app;
    RunSummary part = run_app(app, SystemKind::kNetCache, 4, 0.05);
    EXPECT_EQ(canonical(part), canonical(serial))
        << app << " diverged at intra_jobs=4";
  }
}

TEST(PartitionIdentity, FaultInjectedRunsMatchAcrossThreadCounts) {
  const std::string spec = "drop-update:1,outage:1@300";
  RunSummary serial =
      run_app("gauss", SystemKind::kNetCache, 1, 0.1, spec);
  EXPECT_TRUE(serial.faults_enabled);
  EXPECT_GT(serial.faults.injected, 0u);
  const std::string want = canonical(serial);
  for (int threads : {2, 4}) {
    RunSummary part =
        run_app("gauss", SystemKind::kNetCache, threads, 0.1, spec);
    EXPECT_EQ(canonical(part), want)
        << "faulted run diverged at intra_jobs=" << threads;
  }
}

/// The classic miscounted barrier: parties = workers + 1, so the release
/// never happens and every CPU parks forever — in a partitioned run the
/// waiters are spread across partitions, and the diagnosis must still name
/// them all.
struct MiscountedBarrier : apps::Workload {
  core::Barrier* barrier = nullptr;
  const char* name() const override { return "miscounted-barrier"; }
  void setup(Machine& machine) override {
    barrier = &machine.make_barrier(machine.nodes() + 1);
  }
  sim::Task<void> run(core::Cpu& cpu, int) override {
    co_await barrier->wait(cpu);
  }
  bool verify() override { return true; }
};

TEST(PartitionFailure, DeadlockInOnePartitionStillReportsEveryWaiter) {
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.intra_jobs = 2;
  Machine machine(cfg);
  machine.engine().enable_trace(64);
  MiscountedBarrier workload;
  try {
    machine.run(workload);
    FAIL() << "expected SimError (deadlock)";
  } catch (const SimError& e) {
    const std::string report = e.what();
    EXPECT_NE(report.find("blocked"), std::string::npos) << report;
    EXPECT_NE(report.find("Barrier"), std::string::npos) << report;
    // All four waiters appear, including ones in the other partition.
    for (const char* who : {"cpu 0", "cpu 1", "cpu 2", "cpu 3"}) {
      EXPECT_NE(report.find(who), std::string::npos)
          << "missing waiter " << who << " in:\n" << report;
    }
    // The merged partition-local trace rings made it into the report.
    EXPECT_NE(report.find("event trace tail"), std::string::npos) << report;
    EXPECT_NE(report.find("pdes state"), std::string::npos) << report;
  }
}

RunSummary run_tweaked(int nodes, int intra_jobs,
                       const std::function<void(MachineConfig&)>& tweak = {},
                       const std::string& app = "fft") {
  MachineConfig cfg;
  cfg.nodes = nodes;
  cfg.intra_jobs = intra_jobs;
  if (tweak) tweak(cfg);
  Machine machine(cfg);
  apps::WorkloadParams params;
  params.scale = 0.05;
  auto workload = apps::make_workload(app, params);
  return machine.run(*workload);
}

// Ownership-map edge cases: the contiguous-arc partition function must cover
// every partition, stay monotone, and agree with what the engine builds.
TEST(PartitionEdges, OwnershipMapIsContiguousAndComplete) {
  for (int nodes : {2, 3, 6, 7, 16, 64}) {
    for (int threads : {1, 2, 3, 4}) {
      if (threads > nodes) continue;
      int prev = 0;
      std::vector<int> sizes(static_cast<std::size_t>(threads), 0);
      for (int n = 0; n < nodes; ++n) {
        int p = sim::partition_of_node(n, nodes, threads);
        ASSERT_GE(p, 0) << nodes << "/" << threads;
        ASSERT_LT(p, threads) << nodes << "/" << threads;
        ASSERT_GE(p, prev) << "non-contiguous at node " << n;
        prev = p;
        ++sizes[static_cast<std::size_t>(p)];
      }
      EXPECT_EQ(sim::partition_of_node(0, nodes, threads), 0);
      EXPECT_EQ(sim::partition_of_node(nodes - 1, nodes, threads),
                threads - 1);
      for (int p = 0; p < threads; ++p) {
        EXPECT_GT(sizes[static_cast<std::size_t>(p)], 0)
            << "empty partition " << p << " for " << nodes << " nodes x "
            << threads << " threads";
      }
    }
  }
}

// 6 nodes across 4 threads: arc sizes {2,1,2,1} — the uneven case where an
// off-by-one in the ownership map would hand one node to two workers.
TEST(PartitionEdges, UnevenNodeDivisionIsBitIdentical) {
  auto tweak = [](MachineConfig& cfg) {
    cfg.ring.channels = 120;  // default 128 does not divide 6 home nodes
  };
  RunSummary serial = run_tweaked(6, 1, tweak);
  ASSERT_TRUE(serial.verified);
  const std::string want = canonical(serial);
  for (int threads : {2, 4}) {
    RunSummary part = run_tweaked(6, threads, tweak);
    EXPECT_EQ(canonical(part), want)
        << "6 nodes diverged at intra_jobs=" << threads;
  }
}

// Every partition a single node: no partition ever has a neighbor to batch
// with inside its own arc, so parallel selection degenerates gracefully.
TEST(PartitionEdges, SingleNodePartitionsAreBitIdentical) {
  auto tweak = [](MachineConfig& cfg) {
    cfg.system = SystemKind::kLambdaNet;  // node count free of ring divisors
  };
  RunSummary serial = run_tweaked(3, 1, tweak);
  ASSERT_TRUE(serial.verified);
  RunSummary part = run_tweaked(3, 3, tweak);
  EXPECT_EQ(canonical(part), canonical(serial))
      << "3 nodes / 3 single-node partitions diverged";
}

// intra_jobs above the ring slot count: either the configuration is rejected
// up front (ConfigError) or the run must stay bit-identical — never a
// silently wrong result.
TEST(PartitionEdges, IntraJobsAboveRingSlotsIsIdenticalOrRejected) {
  auto tweak = [](MachineConfig& cfg) {
    cfg.ring.channels = 4;  // 4 slots, 4 nodes; intra request of 8 exceeds it
  };
  std::string want;
  try {
    RunSummary serial = run_tweaked(4, 1, tweak);
    ASSERT_TRUE(serial.verified);
    want = canonical(serial);
  } catch (const ConfigError&) {
    GTEST_SKIP() << "4-channel ring rejected outright";
  }
  try {
    RunSummary part = run_tweaked(4, 8, tweak);
    EXPECT_EQ(canonical(part), want) << "over-partitioned run diverged";
    // Machine::run clamps intra to the node count; threads never exceed it.
    EXPECT_LE(part.pdes.threads, 4);
  } catch (const ConfigError&) {
    SUCCEED();  // explicit rejection is the other acceptable outcome
  }
}

// --- Parallel-commit engagement and gating -------------------------------

// A plain partitioned run must actually use the parallel path (batches with
// more than one event exist in every Table 4 app at this scale), and the
// counters must account for every committed event.
TEST(ParallelCommit, EngagesOnPlainPartitionedRuns) {
  RunSummary s = run_app("fft", SystemKind::kNetCache, 4);
  ASSERT_TRUE(s.verified);
  EXPECT_EQ(s.pdes.threads, 4);
  EXPECT_GT(s.pdes.parallel_commits, 0u);
  EXPECT_GT(s.pdes.parallel_batches, 0u);
  EXPECT_EQ(s.pdes.parallel_commits + s.pdes.serial_commits, s.events);
  EXPECT_GE(s.pdes.residual_fraction(), 0.0);
  EXPECT_LT(s.pdes.residual_fraction(), 1.0);
  // The "pdes:" report line carries the counters; serial runs omit it.
  EXPECT_NE(core::format_pdes(s).find("residual_frac"), std::string::npos);
  RunSummary serial = run_app("fft", SystemKind::kNetCache, 1);
  EXPECT_EQ(serial.pdes.threads, 0);
  EXPECT_EQ(core::format_pdes(serial), "");
}

// The oracle mutates global coherence tables from handler bodies, so
// verified runs must fall back to the fully serialized commit loop.
TEST(ParallelCommit, VerifiedRunsStaySerialized) {
  MachineConfig cfg;
  cfg.nodes = 16;
  cfg.intra_jobs = 4;
  cfg.verify = true;
  Machine machine(cfg);
  apps::WorkloadParams params;
  params.scale = 0.1;
  auto workload = apps::make_workload("fft", params);
  RunSummary s = machine.run(*workload);
  ASSERT_TRUE(s.verified);
  EXPECT_EQ(s.pdes.threads, 4);
  EXPECT_EQ(s.pdes.parallel_commits, 0u);
  EXPECT_GT(s.pdes.serial_commits, 0u);
}

// NETCACHE_PARALLEL_COMMIT=0 is the operational kill-switch: partitioned
// staging still runs, but every commit goes through the serial loop.
TEST(ParallelCommit, KillSwitchDisablesParallelPath) {
  ASSERT_EQ(setenv("NETCACHE_PARALLEL_COMMIT", "0", 1), 0);
  RunSummary s = run_app("fft", SystemKind::kNetCache, 4);
  unsetenv("NETCACHE_PARALLEL_COMMIT");
  ASSERT_TRUE(s.verified);
  EXPECT_EQ(s.pdes.threads, 4);
  EXPECT_EQ(s.pdes.parallel_commits, 0u);
  EXPECT_GT(s.pdes.serial_commits, 0u);
  // And the kill-switch must not change results either.
  RunSummary open = run_app("fft", SystemKind::kNetCache, 4);
  EXPECT_EQ(canonical(open), canonical(s));
}

// Satellite of the --isolate fix: the child-side cap composes the cell's
// request (or the environment default) against the supervisor's slot count.
TEST(ParallelCommit, EffectiveChildIntraJobs) {
  unsetenv("NETCACHE_INTRA_JOBS");
  sweep::Cell cell;
  cell.intra_jobs = 0;
  EXPECT_EQ(sweep::effective_child_intra_jobs(4, cell), 1);
  cell.intra_jobs = 6;
  EXPECT_EQ(sweep::effective_child_intra_jobs(1, cell),
            sweep::compose_intra_jobs(1, 6));
  ASSERT_EQ(setenv("NETCACHE_INTRA_JOBS", "8", 1), 0);
  cell.intra_jobs = 0;  // inherits the environment request, then caps it
  EXPECT_EQ(sweep::effective_child_intra_jobs(2, cell),
            sweep::compose_intra_jobs(2, 8));
  cell.intra_jobs = 3;  // explicit request wins over the environment
  EXPECT_EQ(sweep::effective_child_intra_jobs(2, cell),
            sweep::compose_intra_jobs(2, 3));
  unsetenv("NETCACHE_INTRA_JOBS");
}

TEST(PartitionFailure, WatchdogBudgetsMatchSerialBehavior) {
  for (int intra : {1, 2}) {
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.intra_jobs = intra;
    Machine machine(cfg);
    apps::WorkloadParams params;
    params.scale = 0.05;
    auto workload = apps::make_workload("fft", params);
    sim::RunLimits limits;
    limits.max_events = 100;  // far below what the run needs
    EXPECT_THROW(machine.run(*workload, limits), SimError)
        << "intra_jobs=" << intra;
  }
}

}  // namespace
}  // namespace netcache
