// Conservative-PDES partition layer tests (src/sim/partition.hpp): the
// bit-identity contract (--intra-jobs never changes results), lookahead
// validation, cross-partition deadlock diagnosis, and fault-injection
// determinism across thread counts. See DESIGN.md section 13.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/workload.hpp"
#include "src/common/config.hpp"
#include "src/common/sim_error.hpp"
#include "src/core/machine.hpp"
#include "src/core/run_summary.hpp"
#include "src/core/sync.hpp"
#include "src/sim/partition.hpp"
#include "src/sweep/sweep.hpp"

namespace netcache {
namespace {

using core::Machine;
using core::RunSummary;

// This binary needs true serial baselines (intra_jobs = 1 means one thread,
// not "whatever the CI job exported"), so drop the environment opt-in before
// any Machine is built. EnvironmentOptIn sets and restores its own value.
const bool g_env_cleared = [] {
  unsetenv("NETCACHE_INTRA_JOBS");
  return true;
}();

constexpr SystemKind kAllSystems[] = {
    SystemKind::kNetCache, SystemKind::kNetCacheNoRing, SystemKind::kLambdaNet,
    SystemKind::kDmonUpdate, SystemKind::kDmonInvalidate};

/// The whole serialized summary minus wall-clock (host observability, the
/// one field the determinism contract excepts).
std::string canonical(RunSummary s) {
  s.wall_seconds = 0.0;
  return core::serialize_summary(s);
}

RunSummary run_app(const std::string& app, SystemKind system, int intra_jobs,
                   double scale = 0.1, const std::string& faults = "") {
  MachineConfig cfg;
  cfg.nodes = 16;
  cfg.system = system;
  cfg.intra_jobs = intra_jobs;
  if (!faults.empty()) {
    cfg.faults.spec = faults;
    cfg.verify = true;
  }
  Machine machine(cfg);
  apps::WorkloadParams params;
  params.scale = scale;
  auto workload = apps::make_workload(app, params);
  return machine.run(*workload);
}

TEST(Lookahead, NonPositiveDeclarationsAreRejected) {
  EXPECT_THROW(sim::validated_lookahead(0, "TestNet"), ConfigError);
  EXPECT_THROW(sim::validated_lookahead(-3, "TestNet"), ConfigError);
  EXPECT_EQ(sim::validated_lookahead(5, "TestNet"), 5);
  try {
    sim::validated_lookahead(0, "TestNet");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("TestNet"), std::string::npos);
  }
}

TEST(Lookahead, EveryStackDeclaresAPositiveLookahead) {
  for (SystemKind system : kAllSystems) {
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.system = system;
    Machine machine(cfg);
    EXPECT_GT(machine.interconnect().lookahead(), 0)
        << machine.interconnect().name();
    // What Machine::run would do — must accept every shipped stack.
    EXPECT_NO_THROW(sim::validated_lookahead(
        machine.interconnect().lookahead(), machine.interconnect().name()));
  }
}

TEST(PartitionConfig, IntraJobsValidation) {
  MachineConfig cfg;
  cfg.intra_jobs = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.intra_jobs = -2;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.intra_jobs = 2000;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.intra_jobs = 8;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(PartitionConfig, EnvironmentOptIn) {
  ASSERT_EQ(setenv("NETCACHE_INTRA_JOBS", "3", 1), 0);
  MachineConfig cfg;
  cfg.nodes = 8;
  Machine machine(cfg);
  unsetenv("NETCACHE_INTRA_JOBS");
  EXPECT_EQ(machine.config().intra_jobs, 3);
  // An explicit setting is not overridden by the environment.
  ASSERT_EQ(setenv("NETCACHE_INTRA_JOBS", "7", 1), 0);
  MachineConfig explicit_cfg;
  explicit_cfg.nodes = 8;
  explicit_cfg.intra_jobs = 2;
  Machine explicit_machine(explicit_cfg);
  unsetenv("NETCACHE_INTRA_JOBS");
  EXPECT_EQ(explicit_machine.config().intra_jobs, 2);
}

TEST(PartitionConfig, ThreadsClampToNodeCount) {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.intra_jobs = 8;
  Machine machine(cfg);
  apps::WorkloadParams params;
  params.scale = 0.05;
  auto workload = apps::make_workload("fft", params);
  RunSummary s = machine.run(*workload);
  EXPECT_TRUE(s.verified);
  ASSERT_TRUE(machine.engine().partitioned());
  EXPECT_EQ(machine.engine().partitions()->threads(), 2);
}

TEST(PartitionConfig, ComposeRuleInvariants) {
  // jobs x intra never exceeds the hardware (at least 1 intra thread).
  for (int jobs : {1, 2, 4, 8, 16}) {
    for (int intra : {1, 2, 4, 8}) {
      int composed = sweep::compose_intra_jobs(jobs, intra);
      EXPECT_GE(composed, 1);
      EXPECT_LE(composed, intra);
      unsigned hw = std::thread::hardware_concurrency();
      int budget = static_cast<int>(hw >= 1 ? hw : 1);
      if (composed > 1) {
        EXPECT_LE(jobs * composed, budget);
      }
    }
  }
  EXPECT_EQ(sweep::compose_intra_jobs(1, 1), 1);
}

// The tentpole contract: a partitioned run is bit-identical to the serial
// engine — the full serialized RunSummary (events, run_time, every stat,
// histogram quantiles, timing-wheel counters), not just a spot check.
TEST(PartitionIdentity, EverySystemAtTwoAndFourThreads) {
  for (SystemKind system : kAllSystems) {
    RunSummary serial = run_app("fft", system, 1);
    ASSERT_TRUE(serial.verified) << serial.system;
    const std::string want = canonical(serial);
    for (int threads : {2, 4}) {
      RunSummary part = run_app("fft", system, threads);
      EXPECT_EQ(canonical(part), want)
          << serial.system << " diverged at intra_jobs=" << threads;
    }
  }
}

TEST(PartitionIdentity, EveryAppOnNetCacheAtFourThreads) {
  for (const char* app : {"cg", "em3d", "fft", "gauss", "lu", "mg", "ocean",
                          "radix", "raytrace", "sor", "water", "wf"}) {
    RunSummary serial = run_app(app, SystemKind::kNetCache, 1, 0.05);
    ASSERT_TRUE(serial.verified) << app;
    RunSummary part = run_app(app, SystemKind::kNetCache, 4, 0.05);
    EXPECT_EQ(canonical(part), canonical(serial))
        << app << " diverged at intra_jobs=4";
  }
}

TEST(PartitionIdentity, FaultInjectedRunsMatchAcrossThreadCounts) {
  const std::string spec = "drop-update:1,outage:1@300";
  RunSummary serial =
      run_app("gauss", SystemKind::kNetCache, 1, 0.1, spec);
  EXPECT_TRUE(serial.faults_enabled);
  EXPECT_GT(serial.faults.injected, 0u);
  const std::string want = canonical(serial);
  for (int threads : {2, 4}) {
    RunSummary part =
        run_app("gauss", SystemKind::kNetCache, threads, 0.1, spec);
    EXPECT_EQ(canonical(part), want)
        << "faulted run diverged at intra_jobs=" << threads;
  }
}

/// The classic miscounted barrier: parties = workers + 1, so the release
/// never happens and every CPU parks forever — in a partitioned run the
/// waiters are spread across partitions, and the diagnosis must still name
/// them all.
struct MiscountedBarrier : apps::Workload {
  core::Barrier* barrier = nullptr;
  const char* name() const override { return "miscounted-barrier"; }
  void setup(Machine& machine) override {
    barrier = &machine.make_barrier(machine.nodes() + 1);
  }
  sim::Task<void> run(core::Cpu& cpu, int) override {
    co_await barrier->wait(cpu);
  }
  bool verify() override { return true; }
};

TEST(PartitionFailure, DeadlockInOnePartitionStillReportsEveryWaiter) {
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.intra_jobs = 2;
  Machine machine(cfg);
  machine.engine().enable_trace(64);
  MiscountedBarrier workload;
  try {
    machine.run(workload);
    FAIL() << "expected SimError (deadlock)";
  } catch (const SimError& e) {
    const std::string report = e.what();
    EXPECT_NE(report.find("blocked"), std::string::npos) << report;
    EXPECT_NE(report.find("Barrier"), std::string::npos) << report;
    // All four waiters appear, including ones in the other partition.
    for (const char* who : {"cpu 0", "cpu 1", "cpu 2", "cpu 3"}) {
      EXPECT_NE(report.find(who), std::string::npos)
          << "missing waiter " << who << " in:\n" << report;
    }
    // The merged partition-local trace rings made it into the report.
    EXPECT_NE(report.find("event trace tail"), std::string::npos) << report;
    EXPECT_NE(report.find("pdes state"), std::string::npos) << report;
  }
}

TEST(PartitionFailure, WatchdogBudgetsMatchSerialBehavior) {
  for (int intra : {1, 2}) {
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.intra_jobs = intra;
    Machine machine(cfg);
    apps::WorkloadParams params;
    params.scale = 0.05;
    auto workload = apps::make_workload("fft", params);
    sim::RunLimits limits;
    limits.max_events = 100;  // far below what the run needs
    EXPECT_THROW(machine.run(*workload, limits), SimError)
        << "intra_jobs=" << intra;
  }
}

}  // namespace
}  // namespace netcache
