// Config-space invariant sweeps: physical monotonicities that must hold
// for every system, checked on a fast synthetic workload.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/apps/synthetic.hpp"
#include "src/core/machine.hpp"

namespace netcache {
namespace {

Cycles run_hot(SystemKind kind, std::function<void(MachineConfig&)> tweak) {
  MachineConfig cfg;
  cfg.system = kind;
  if (tweak) tweak(cfg);
  core::Machine m(cfg);
  apps::SyntheticSpec spec;
  spec.pattern = "hot";
  spec.accesses_per_node = 3000;
  auto w = apps::make_synthetic(spec);
  auto s = m.run(*w);
  EXPECT_TRUE(s.verified);
  return s.run_time;
}

class AllSystems : public ::testing::TestWithParam<SystemKind> {};

TEST_P(AllSystems, SlowerMemoryNeverSpeedsThingsUp) {
  SystemKind kind = GetParam();
  Cycles prev = 0;
  for (Cycles mem : {44, 76, 108, 140}) {
    Cycles t = run_hot(kind, [mem](MachineConfig& c) {
      c.mem_block_read_cycles = mem;
    });
    EXPECT_GE(t, prev) << "mem=" << mem;
    prev = t;
  }
}

TEST_P(AllSystems, HigherRateNeverSlowsThingsDown) {
  SystemKind kind = GetParam();
  Cycles prev = std::numeric_limits<Cycles>::max();
  for (double rate : {5.0, 10.0, 20.0}) {
    Cycles t = run_hot(kind, [rate](MachineConfig& c) {
      c.gbit_per_s = rate;
    });
    EXPECT_LE(t, prev) << "rate=" << rate;
    prev = t;
  }
}

TEST_P(AllSystems, MoreNodesDividesTheWork) {
  // Synthetic load is per-node constant, so more nodes = more total work;
  // just check runs complete and verify across widths.
  SystemKind kind = GetParam();
  for (int nodes : {2, 4, 8, 16}) {
    MachineConfig cfg;
    cfg.system = kind;
    cfg.nodes = nodes;
    core::Machine m(cfg);
    apps::SyntheticSpec spec;
    spec.pattern = "uniform";
    spec.accesses_per_node = 1000;
    auto w = apps::make_synthetic(spec);
    EXPECT_TRUE(m.run(*w).verified) << nodes << " nodes";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllSystems,
    ::testing::Values(SystemKind::kNetCache, SystemKind::kNetCacheNoRing,
                      SystemKind::kLambdaNet, SystemKind::kDmonUpdate,
                      SystemKind::kDmonInvalidate),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(NetCacheConfigSpace, RingNeverHurtsTheHotPattern) {
  Cycles with_ring = run_hot(SystemKind::kNetCache, nullptr);
  Cycles without = run_hot(SystemKind::kNetCacheNoRing, nullptr);
  EXPECT_LE(with_ring, without);
}

TEST(NetCacheConfigSpace, BiggerRingNeverHurtsTheHotPattern) {
  Cycles prev = 0;
  for (int channels : {64, 128, 256}) {
    Cycles t = run_hot(SystemKind::kNetCache, [channels](MachineConfig& c) {
      c.ring.channels = channels;
    });
    if (prev != 0) {
      EXPECT_LE(t, prev + prev / 50) << channels;  // allow 2% noise
    }
    prev = t;
  }
}

}  // namespace
}  // namespace netcache
