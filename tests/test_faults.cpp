// Fault-injection tests (src/faults/): the schedule is a pure function of
// the fault seed (identical runs at any sweep width), every fault class
// either recovers within its retry budget or is caught by the coherence
// oracle / deadlock diagnostics, and contradictory configurations are
// rejected up front. See DESIGN.md §11.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/apps/workload.hpp"
#include "src/common/config.hpp"
#include "src/faults/faults.hpp"
#include "src/common/sim_error.hpp"
#include "src/core/machine.hpp"
#include "src/core/run_summary.hpp"
#include "src/sweep/sweep.hpp"

namespace netcache {
namespace {

using core::Machine;
using core::RunSummary;

MachineConfig config_for(SystemKind kind, const std::string& spec) {
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.system = kind;
  cfg.faults.spec = spec;
  return cfg;
}

RunSummary run_app(const MachineConfig& cfg, const std::string& app) {
  Machine machine(cfg);
  apps::WorkloadParams params;
  params.scale = 0.2;
  auto workload = apps::make_workload(app, params);
  return machine.run(*workload);
}

/// Runs `fn`, which must throw SimError, and returns the diagnostic message.
template <typename Fn>
std::string diagnose(Fn&& fn) {
  try {
    fn();
  } catch (const SimError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected SimError";
  return {};
}

void expect_rejected(MachineConfig cfg, const char* why_fragment) {
  try {
    Machine machine(cfg);
    FAIL() << "expected ConfigError (" << why_fragment << ")";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(why_fragment), std::string::npos)
        << e.what();
  }
}

// --- Determinism ----------------------------------------------------------

TEST(FaultPlan, SameSeedSameScheduleSameRun) {
  MachineConfig cfg =
      config_for(SystemKind::kDmonUpdate, "drop-update:2,corrupt-update:1");
  RunSummary a = run_app(cfg, "gauss");
  RunSummary b = run_app(cfg, "gauss");
  EXPECT_EQ(a.run_time, b.run_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults.injected, b.faults.injected);
  EXPECT_EQ(a.faults.recovered, b.faults.recovered);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_TRUE(a.faults_enabled);
  EXPECT_GT(a.faults.injected, 0u);
}

TEST(FaultPlan, DifferentSeedsMoveTheSchedule) {
  MachineConfig cfg = config_for(SystemKind::kDmonUpdate, "outage:3@400");
  RunSummary a = run_app(cfg, "gauss");
  cfg.faults.seed = 1234567;
  RunSummary b = run_app(cfg, "gauss");
  // Arm times derive from the seed alone; with windows this long some run
  // difference must show up (both still verify).
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);
  EXPECT_NE(a.run_time, b.run_time);
}

TEST(FaultPlan, BitIdenticalAtAnySweepWidth) {
  // One faulted cell per system through the sweep driver at 1 and at 3
  // worker threads: the fault schedule must not depend on scheduling.
  auto sweep_times = [](int jobs) {
    sweep::SweepDriver driver(jobs);
    for (SystemKind kind :
         {SystemKind::kNetCache, SystemKind::kLambdaNet,
          SystemKind::kDmonUpdate}) {
      sweep::Cell cell;
      cell.app = "gauss";
      cell.system = kind;
      cell.nodes = 4;
      cell.scale = 0.2;
      cell.tweak = [](MachineConfig& config) {
        config.faults.spec = "drop-update:1,outage:1@300";
        config.verify = true;
      };
      driver.submit(std::move(cell));
    }
    std::vector<Cycles> times;
    for (const auto& r : driver.run()) {
      EXPECT_TRUE(r.ok) << r.error;
      times.push_back(r.summary.run_time);
    }
    return times;
  };
  EXPECT_EQ(sweep_times(1), sweep_times(3));
}

// --- Every fault class recovers under its budget --------------------------

struct RecoveryCase {
  SystemKind system;
  const char* spec;
};

TEST(FaultRecovery, EveryClassRecoversCleanly) {
  const RecoveryCase cases[] = {
      {SystemKind::kDmonUpdate, "drop-update:2"},
      {SystemKind::kLambdaNet, "drop-update:1"},
      {SystemKind::kDmonUpdate, "corrupt-update:2"},
      {SystemKind::kNetCache, "ring-slot:1"},
      {SystemKind::kDmonInvalidate, "drop-invalidate:1"},
      {SystemKind::kNetCache, "outage:1@300"},
      {SystemKind::kDmonUpdate, "stall:2@300"},
      {SystemKind::kNetCache,
       "drop-update:1,corrupt-update:1,outage:1@200,stall:1@200"},
  };
  for (const RecoveryCase& c : cases) {
    MachineConfig cfg = config_for(c.system, c.spec);
    cfg.verify = true;  // recovery must also satisfy the oracle
    RunSummary s = run_app(cfg, "gauss");
    EXPECT_TRUE(s.verified) << c.spec;
    EXPECT_EQ(s.faults.unrecovered, 0u) << c.spec;
    EXPECT_GT(s.faults.injected, 0u) << c.spec;
    EXPECT_GE(s.faults.recovered, s.faults.injected) << c.spec;
  }
}

TEST(FaultRecoveryDeath, RetryBudgetExhaustionIsDiagnosed) {
  auto hopeless = [] {
    // A 50k-cycle outage against a 4-retry budget of 16-cycle backoffs can
    // never be ridden out; the site must abort with the budget report, not
    // spin or hang.
    MachineConfig cfg = config_for(SystemKind::kDmonUpdate, "outage:1@50000");
    cfg.faults.retry_budget = 4;
    cfg.faults.retry_backoff = 16;
    run_app(cfg, "gauss");
  };
  EXPECT_DEATH(hopeless(), "outlasted the fault retry budget");
}

// --- Recovery off: every class is caught, never silent --------------------

TEST(FaultNoRecoveryDeath, CorruptUpdateIsCaughtByTheOracle) {
  auto mutant = [] {
    MachineConfig cfg = config_for(SystemKind::kDmonUpdate, "corrupt-update:1");
    cfg.verify = true;
    cfg.faults.recovery = false;
    run_app(cfg, "gauss");
  };
  EXPECT_DEATH(mutant(), "coherence violation");
}

TEST(FaultNoRecoveryDeath, StaleRingSlotIsCaughtByTheOracle) {
  auto mutant = [] {
    // wf re-reads the block whose rewrite the fault suppresses; gauss at
    // this scale evicts the stale slot before any ring hit, in which case
    // the fault genuinely has no observable effect to catch.
    MachineConfig cfg = config_for(SystemKind::kNetCache, "ring-slot:1");
    cfg.verify = true;
    cfg.faults.recovery = false;
    run_app(cfg, "wf");
  };
  EXPECT_DEATH(mutant(), "coherence violation");
}

TEST(FaultNoRecoveryDeath, DroppedInvalidateBreaksTheSingleWriterEpoch) {
  auto mutant = [] {
    MachineConfig cfg =
        config_for(SystemKind::kDmonInvalidate, "drop-invalidate:1");
    cfg.verify = true;
    cfg.faults.recovery = false;
    run_app(cfg, "gauss");
  };
  EXPECT_DEATH(mutant(), "coherence violation");
}

TEST(FaultNoRecovery, OutageWithoutRecoveryDeadlocksWithDiagnosis) {
  MachineConfig cfg = config_for(SystemKind::kLambdaNet, "outage:1@200");
  cfg.verify = true;
  cfg.faults.recovery = false;
  std::string report = diagnose([&] { run_app(cfg, "gauss"); });
  EXPECT_NE(report.find("FaultBlackHole"), std::string::npos) << report;
  EXPECT_NE(report.find("fault-outage"), std::string::npos) << report;
}

TEST(FaultNoRecovery, StallWithoutRecoveryDeadlocksWithDiagnosis) {
  MachineConfig cfg = config_for(SystemKind::kDmonUpdate, "stall:3@200");
  cfg.verify = true;
  cfg.faults.recovery = false;
  std::string report = diagnose([&] { run_app(cfg, "gauss"); });
  EXPECT_NE(report.find("FaultBlackHole"), std::string::npos) << report;
  EXPECT_NE(report.find("fault-stall"), std::string::npos) << report;
}

// --- Process faults (crash/hang) ------------------------------------------
// These take down the host process by design; the sweep supervisor contains
// them (test_supervisor). Here: the in-process behavior is exactly what the
// supervisor relies on — crash aborts with forensics on stderr, hang is a
// true livelock that only a budget (or the supervisor's wall clock) ends.

TEST(FaultProcessDeath, CrashFaultAbortsWithForensicsOnStderr) {
  MachineConfig cfg = config_for(SystemKind::kNetCache, "crash:1");
  EXPECT_DEATH(run_app(cfg, "gauss"), "fault-crash");
}

TEST(FaultProcess, HangFaultLivelocksUntilTheCycleBudget) {
  // The hang parks a transaction on the black hole *and* keeps a heartbeat
  // event circulating, so neither the deadlock diagnosis nor the stall
  // heuristic fires — only the virtual-time budget ends the run, and the
  // blocked-waiter table in the report names the parked fault.
  MachineConfig cfg = config_for(SystemKind::kNetCache, "hang:1");
  std::string report = diagnose([&] {
    Machine machine(cfg);
    apps::WorkloadParams params;
    params.scale = 0.2;
    auto workload = apps::make_workload("gauss", params);
    sim::RunLimits limits;
    limits.max_cycles = 200000;
    machine.run(*workload, limits);
  });
  EXPECT_NE(report.find("max_cycles"), std::string::npos) << report;
  EXPECT_NE(report.find("fault-hang"), std::string::npos) << report;
}

TEST(FaultConfig, ProcessFaultSpecsAreDetected) {
  EXPECT_TRUE(faults::spec_has_process_faults("crash:1"));
  EXPECT_TRUE(faults::spec_has_process_faults("hang:2"));
  EXPECT_TRUE(faults::spec_has_process_faults("drop-update:1,hang:1"));
  EXPECT_FALSE(faults::spec_has_process_faults("drop-update:1,outage:1@300"));
  EXPECT_FALSE(faults::spec_has_process_faults(""));
  EXPECT_THROW(faults::spec_has_process_faults("bogus:1"), ConfigError);
}

TEST(FaultConfig, ProcessFaultsAreValidOnEverySystem) {
  // crash/hang model host-process failure, not protocol behavior: no
  // system-applicability rejection, on any interconnect.
  for (SystemKind kind :
       {SystemKind::kNetCache, SystemKind::kLambdaNet,
        SystemKind::kDmonUpdate, SystemKind::kDmonInvalidate}) {
    MachineConfig cfg = config_for(kind, "crash:1,hang:1");
    EXPECT_NO_THROW(Machine machine(cfg)) << to_string(kind);
  }
}

// --- Configuration validation ---------------------------------------------

TEST(FaultConfig, GrammarErrorsAreRejected) {
  expect_rejected(config_for(SystemKind::kDmonUpdate, "bogus:1"),
                  "unknown fault kind");
  expect_rejected(config_for(SystemKind::kDmonUpdate, "drop-update"),
                  "missing its :count");
  expect_rejected(config_for(SystemKind::kDmonUpdate, "drop-update:0"),
                  "bad count");
  expect_rejected(config_for(SystemKind::kDmonUpdate, "drop-update:1@50"),
                  "@duration only applies to outage/stall");
  expect_rejected(config_for(SystemKind::kDmonUpdate, "outage:1@0"),
                  "bad duration");
  expect_rejected(config_for(SystemKind::kDmonUpdate, ",drop-update:1"),
                  "empty fault item");
}

TEST(FaultConfig, SystemApplicabilityIsChecked) {
  expect_rejected(config_for(SystemKind::kLambdaNet, "ring-slot:1"),
                  "ring-slot faults need the NetCache shared cache");
  expect_rejected(config_for(SystemKind::kNetCache, "drop-invalidate:1"),
                  "drop-invalidate faults need the I-SPEED protocol");
  expect_rejected(config_for(SystemKind::kDmonInvalidate, "drop-update:1"),
                  "need an update protocol");
}

TEST(FaultConfig, NoRecoveryRequiresTheOracle) {
  // The CI verify job's NETCACHE_VERIFY=1 would legitimately satisfy the
  // oracle requirement; this test is about the rejection path.
  unsetenv("NETCACHE_VERIFY");
  MachineConfig cfg = config_for(SystemKind::kDmonUpdate, "drop-update:1");
  cfg.faults.recovery = false;  // verify stays off: silent-wrong-result risk
  expect_rejected(cfg, "unless the coherence oracle is on");
}

TEST(FaultConfig, RetryKnobsMustBePositive) {
  MachineConfig a = config_for(SystemKind::kDmonUpdate, "stall:1");
  a.faults.retry_budget = 0;
  expect_rejected(a, "retry budget");
  MachineConfig b = config_for(SystemKind::kDmonUpdate, "stall:1");
  b.faults.retry_backoff = 0;
  expect_rejected(b, "retry backoff");
}

TEST(FaultConfig, FaultFreeRunsCarryNoFaultState) {
  unsetenv("NETCACHE_VERIFY");  // the CI verify job forces the oracle on
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.system = SystemKind::kDmonUpdate;
  Machine machine(cfg);
  EXPECT_EQ(machine.faults(), nullptr);
  EXPECT_EQ(machine.oracle(), nullptr);
}

}  // namespace
}  // namespace netcache
