#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace netcache::sim {
namespace {

constexpr Cycles kWheel = static_cast<Cycles>(EventQueue::kWheelSize);

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fire();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(42, [] {});
  q.push(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
  q.pop();
  EXPECT_EQ(q.next_time(), 42);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(1); });
  q.pop().fire();
  q.push(5, [&] { order.push_back(2); });
  q.push(1, [&] { order.push_back(3); });
  q.pop().fire();
  q.pop().fire();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(EventQueue, ResumeAndCallbackEventsShareTimeline) {
  // push_resume events and callback events at the same instant interleave by
  // insertion order. (Uses an actual coroutine handle via a no-op frame.)
  EventQueue q;
  std::vector<int> order;
  q.push(3, [&] { order.push_back(0); });
  q.push(3, [&] { order.push_back(1); });
  q.push(1, [&] { order.push_back(2); });
  while (!q.empty()) {
    Event e = q.pop();
    EXPECT_FALSE(e.is_resume());
    e.fire();
  }
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
}

// --- timing-wheel determinism ---

TEST(EventQueue, SameCycleFifoAcrossWheelAndOverflow) {
  // Events at one instant must fire in insertion order even when the first
  // insertions land in the far-future overflow heap and later ones land in a
  // wheel bucket (after the cursor advanced within range of T).
  EventQueue q;
  std::vector<int> order;
  const Cycles kT = kWheel + 500;  // beyond the horizon of the first anchor
  q.push(1, [&] { order.push_back(-2); });       // anchor: cursor near 1
  q.push(kT, [&] { order.push_back(0); });       // -> overflow
  q.push(kT, [&] { order.push_back(1); });       // -> overflow
  q.push(kWheel, [&] { order.push_back(-1); });  // advances cursor when popped
  q.pop().fire();  // @1
  q.pop().fire();  // @kWheel; horizon now covers kT
  q.push(kT, [&] { order.push_back(2); });  // -> wheel bucket
  q.push(kT, [&] { order.push_back(3); });  // -> wheel bucket
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(order, (std::vector<int>{-2, -1, 0, 1, 2, 3}));
}

TEST(EventQueue, FarFutureOverflowFiresInOrder) {
  // Far-future events parked in the overflow heap fire at the right times in
  // (time, insertion) order once the cursor reaches them.
  EventQueue q;
  std::vector<Cycles> fired;
  for (Cycles k = 8; k >= 1; --k) {
    Cycles t = k * kWheel + 17;
    q.push(t, [&fired, t] { fired.push_back(t); });
  }
  q.push(3, [&fired] { fired.push_back(3); });
  std::vector<Cycles> times;
  while (!q.empty()) {
    times.push_back(q.next_time());
    q.pop().fire();
  }
  EXPECT_EQ(fired, times);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.size(), 9u);
}

TEST(EventQueue, WheelWrapKeepsBucketTimesApart) {
  // Times T and T + kWheelSize map to the same bucket index; the earlier one
  // must fire first and the later one must not fire early. Push/pop
  // interleaved right at the wrap edge.
  EventQueue q;
  std::vector<Cycles> fired;
  auto record = [&](Cycles t) {
    q.push(t, [&fired, t] { fired.push_back(t); });
  };
  record(10);              // bucket 10
  record(10 + kWheel);     // same bucket index, one lap later -> overflow
  record(10 + 2 * kWheel); // two laps later
  EXPECT_EQ(q.next_time(), 10);
  q.pop().fire();          // cursor now 10
  record(11);
  q.pop().fire();          // 11
  EXPECT_EQ(q.next_time(), 10 + kWheel);
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(fired, (std::vector<Cycles>{10, 11, 10 + kWheel, 10 + 2 * kWheel}));
}

TEST(EventQueue, SameCycleFifoSurvivesPushDuringDrain) {
  // Events scheduled for the instant currently being drained (delay-0
  // handoffs) run after the already-queued same-instant events.
  EventQueue q;
  std::vector<int> order;
  q.push(7, [&] {
    order.push_back(0);
    q.push(7, [&] { order.push_back(2); });
  });
  q.push(7, [&] { order.push_back(1); });
  while (!q.empty()) {
    EXPECT_EQ(q.next_time(), 7);
    q.pop().fire();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ManyEventsRandomTimesMatchReferenceOrder) {
  // Cross-check the wheel against a simple reference: stable sort by time.
  EventQueue q;
  std::vector<std::pair<Cycles, int>> ref;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  std::vector<std::pair<Cycles, int>> fired;
  for (int i = 0; i < 5000; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    // Mix near-future, bucket-colliding, and far-future times.
    Cycles t = static_cast<Cycles>(rng % (3 * static_cast<std::uint64_t>(kWheel)));
    ref.emplace_back(t, i);
    q.push(t, [&fired, t, i] { fired.emplace_back(t, i); });
  }
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(fired, ref);
}

TEST(EventQueue, RegrowsOnceUnderFarFutureHeavyLoad) {
  // A workload whose delays routinely exceed the wheel horizon must trigger
  // the one-shot 2x regrow — and the regrow must not change fire order.
  EventQueue q;
  std::vector<std::pair<Cycles, int>> ref;
  std::vector<std::pair<Cycles, int>> fired;
  std::uint64_t rng = 0x853c49e6748fea9bull;
  const int n = 3 * static_cast<int>(EventQueue::kRegrowMinPushes) / 2;
  for (int i = 0; i < n; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    // ~1/3 of events land past the horizon: far over the 10% regrow
    // threshold once enough pushes have accumulated.
    Cycles t = (i % 3 == 0)
                   ? kWheel + static_cast<Cycles>(rng % static_cast<std::uint64_t>(kWheel))
                   : static_cast<Cycles>(rng % static_cast<std::uint64_t>(kWheel));
    ref.emplace_back(t, i);
    q.push(t, [&fired, t, i] { fired.emplace_back(t, i); });
  }
  EXPECT_EQ(q.stats().wheel_regrows, 1u);
  EXPECT_EQ(q.wheel_size(), 2 * EventQueue::kWheelSize);
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(fired, ref);
}

TEST(EventQueue, NoRegrowForNearFutureWorkloads) {
  // Plenty of pushes but almost no overflow traffic: the wheel keeps its
  // initial size (the regrow guard never trips on healthy workloads).
  EventQueue q;
  for (std::uint64_t i = 0; i < 2 * EventQueue::kRegrowMinPushes; ++i) {
    q.push(static_cast<Cycles>(i % 100), [] {});
  }
  EXPECT_EQ(q.stats().wheel_regrows, 0u);
  EXPECT_EQ(q.wheel_size(), EventQueue::kWheelSize);
  while (!q.empty()) q.pop().fire();
}

TEST(EventQueue, InlineCallbackDestroyedWithoutFiring) {
  // Dropping a queue with pending callback events must destroy the inline
  // callables exactly once (checked via a ref-counting capture).
  int alive = 0;
  struct Token {
    int* alive;
    explicit Token(int* a) : alive(a) { ++*alive; }
    Token(const Token& o) : alive(o.alive) { ++*alive; }
    Token(Token&& o) noexcept : alive(o.alive) { ++*alive; }
    ~Token() { --*alive; }
  };
  {
    EventQueue q;
    Token tok(&alive);
    q.push(1, [tok] { (void)tok; });
    q.push(kWheel * 2, [tok] { (void)tok; });  // overflow copy
    EXPECT_GE(alive, 3);
  }
  EXPECT_EQ(alive, 0);
}

}  // namespace
}  // namespace netcache::sim
