#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace netcache::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(42, [] {});
  q.push(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
  q.pop();
  EXPECT_EQ(q.next_time(), 42);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(1); });
  q.pop()();
  q.push(5, [&] { order.push_back(2); });
  q.push(1, [&] { order.push_back(3); });
  q.pop()();
  q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

}  // namespace
}  // namespace netcache::sim
