#include "src/common/config.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/common/sim_error.hpp"

namespace netcache {
namespace {

/// Expects cfg.validate() to throw ConfigError whose key matches `key` and
/// whose message mentions `why_fragment`.
void expect_rejected(const MachineConfig& cfg, const std::string& key,
                     const std::string& why_fragment) {
  try {
    cfg.validate();
    FAIL() << "expected ConfigError for key " << key;
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.key(), key);
    EXPECT_NE(std::string(e.what()).find(why_fragment), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(e.value()), std::string::npos)
        << "message must carry the offending value: " << e.what();
  }
}

TEST(Config, DefaultsMatchPaperBaseSystem) {
  MachineConfig cfg;
  EXPECT_EQ(cfg.nodes, 16);
  EXPECT_EQ(cfg.l1.size_bytes, 4 * 1024);
  EXPECT_EQ(cfg.l1.block_bytes, 32);
  EXPECT_EQ(cfg.l2.size_bytes, 16 * 1024);
  EXPECT_EQ(cfg.l2.block_bytes, 64);
  EXPECT_EQ(cfg.write_buffer_entries, 16);
  EXPECT_EQ(cfg.l2_hit_cycles, 12);
  EXPECT_EQ(cfg.mem_block_read_cycles, 76);
  EXPECT_DOUBLE_EQ(cfg.gbit_per_s, 10.0);
  EXPECT_EQ(cfg.ring.channels, 128);
  EXPECT_EQ(cfg.ring.capacity_bytes(), 32 * 1024);
  cfg.validate();  // must not throw
}

TEST(Config, ValidateRejectsBadGeometry) {
  MachineConfig cfg;
  cfg.l2.block_bytes = 48;  // not a power of two
  expect_rejected(cfg, "l2.block_bytes", "power");
}

TEST(Config, ValidateRejectsUnevenRingChannels) {
  MachineConfig cfg;
  cfg.nodes = 12;
  cfg.ring.channels = 128;  // 128 % 12 != 0
  expect_rejected(cfg, "ring.channels", "divide evenly among home nodes");
}

TEST(Config, ValidateRejectsMismatchedRingBlock) {
  MachineConfig cfg;
  cfg.ring.block_bytes = 32;  // smaller than the 64-byte L2 block
  expect_rejected(cfg, "ring.block_bytes", "shared cache line");
  cfg.ring.block_bytes = 96;  // not a power-of-two multiple
  expect_rejected(cfg, "ring.block_bytes", "shared cache line");
  cfg.ring.block_bytes = 128;  // the paper's Section 5.3.2 variant: fine
  cfg.ring.blocks_per_channel = 2;
  cfg.validate();
}

TEST(Config, ValidateRejectsOutOfRangeScalars) {
  MachineConfig cfg;
  cfg.nodes = 0;
  expect_rejected(cfg, "nodes", "at least one node");
  cfg = MachineConfig{};
  cfg.gbit_per_s = -2.5;
  expect_rejected(cfg, "gbit_per_s", "positive");
  cfg = MachineConfig{};
  cfg.write_buffer_entries = 0;
  expect_rejected(cfg, "write_buffer_entries", "cannot be empty");
}

TEST(Config, ConfigErrorIsASimError) {
  // Drivers catch SimError; ConfigError must be part of that hierarchy.
  MachineConfig cfg;
  cfg.nodes = -1;
  EXPECT_THROW(cfg.validate(), SimError);
}

TEST(Config, UpdateMessageScalesWithWords) {
  MachineConfig cfg;
  LatencyParams lp = derive_latencies(cfg);
  EXPECT_EQ(lp.update_message(1, false), 2);   // 32+64 bits / 50
  EXPECT_EQ(lp.update_message(16, false), 12);  // full block
  EXPECT_LT(lp.update_message(1, true), lp.update_message(16, true));
}

TEST(Config, ToStringCoversAllEnums) {
  EXPECT_STREQ(to_string(SystemKind::kNetCache), "NetCache");
  EXPECT_STREQ(to_string(SystemKind::kNetCacheNoRing), "NetCache-NoRing");
  EXPECT_STREQ(to_string(SystemKind::kLambdaNet), "LambdaNet");
  EXPECT_STREQ(to_string(SystemKind::kDmonUpdate), "DMON-U");
  EXPECT_STREQ(to_string(SystemKind::kDmonInvalidate), "DMON-I");
  EXPECT_STREQ(to_string(RingReplacement::kRandom), "Random");
  EXPECT_STREQ(to_string(RingReplacement::kLru), "LRU");
  EXPECT_STREQ(to_string(RingReplacement::kLfu), "LFU");
  EXPECT_STREQ(to_string(RingReplacement::kFifo), "FIFO");
  EXPECT_STREQ(to_string(RingAssociativity::kFullyAssociative), "Fully");
  EXPECT_STREQ(to_string(RingAssociativity::kDirectMapped), "Direct");
}

TEST(Config, CacheSets) {
  EXPECT_EQ((CacheConfig{4096, 32, 1}).sets(), 128);
  EXPECT_EQ((CacheConfig{16384, 64, 1}).sets(), 256);
  EXPECT_EQ((CacheConfig{16384, 64, 4}).sets(), 64);
}

TEST(Config, RingRoundtripScalesInverselyWithRate) {
  MachineConfig cfg;
  for (double rate : {2.5, 5.0, 10.0, 20.0, 40.0}) {
    cfg.gbit_per_s = rate;
    LatencyParams lp = derive_latencies(cfg);
    EXPECT_EQ(lp.ring_roundtrip,
              static_cast<Cycles>(std::llround(40.0 * 10.0 / rate)));
  }
}

}  // namespace
}  // namespace netcache
