#include "src/apps/trace.hpp"

#include <gtest/gtest.h>

#include "src/core/machine.hpp"

namespace netcache::apps {
namespace {

TEST(Trace, ParsesAllRecordKinds) {
  auto w = TraceWorkload::from_string(
      "# a comment\n"
      "0 r 128\n"
      "0 w 256 8\n"
      "0 c 100\n"
      "0 b\n"
      "1 r 64\n"
      "1 b\n");
  EXPECT_EQ(w->thread_count(), 2);
  EXPECT_EQ(w->records(0), 4u);
  EXPECT_EQ(w->records(1), 2u);
}

TEST(Trace, RoundTripsThroughText) {
  std::vector<std::vector<TraceRecord>> streams(2);
  streams[0] = {{TraceRecord::Op::kRead, 128, 0},
                {TraceRecord::Op::kWrite, 256, 8},
                {TraceRecord::Op::kBarrier, 0, 0}};
  streams[1] = {{TraceRecord::Op::kCompute, 0, 55},
                {TraceRecord::Op::kBarrier, 0, 0}};
  std::string text = trace_to_string(streams);
  auto parsed = TraceWorkload::from_string(text);
  EXPECT_EQ(parsed->thread_count(), 2);
  EXPECT_EQ(parsed->records(0), 3u);
  EXPECT_EQ(parsed->records(1), 2u);
  EXPECT_EQ(trace_to_string(streams), text);
}

TEST(Trace, ReplaysOnTheMachine) {
  MachineConfig cfg;
  cfg.nodes = 4;
  core::Machine m(cfg);
  std::string text;
  for (int tid = 0; tid < 4; ++tid) {
    for (int i = 0; i < 50; ++i) {
      text += std::to_string(tid) + " r " +
              std::to_string((tid * 50 + i) * 64) + "\n";
      text += std::to_string(tid) + " w " +
              std::to_string((tid * 50 + i) * 64) + " 4\n";
    }
    text += std::to_string(tid) + " b\n";
  }
  auto w = TraceWorkload::from_string(text);
  auto s = m.run(*w);
  EXPECT_TRUE(s.verified);  // all records executed
  EXPECT_EQ(s.totals.reads, 200u);
  EXPECT_EQ(s.totals.writes, 200u);
  EXPECT_EQ(s.totals.barrier_waits, 4u);
}

TEST(Trace, WiderMachineAttendsBarriers) {
  // A 2-thread trace with barriers on an 8-node machine must not deadlock.
  MachineConfig cfg;
  cfg.nodes = 8;
  core::Machine m(cfg);
  auto w = TraceWorkload::from_string(
      "0 r 0\n0 b\n0 r 64\n0 b\n"
      "1 r 128\n1 b\n1 r 192\n1 b\n");
  auto s = m.run(*w);
  EXPECT_TRUE(s.verified);
  EXPECT_EQ(s.totals.reads, 4u);
}

TEST(Trace, ComputeAdvancesTime) {
  MachineConfig cfg;
  cfg.nodes = 1;
  core::Machine m(cfg);
  auto w = TraceWorkload::from_string("0 c 12345\n");
  auto s = m.run(*w);
  EXPECT_GE(s.run_time, 12345);
  EXPECT_EQ(s.totals.compute_cycles, 12345);
}

TEST(Trace, MismatchedBarriersAbort) {
  EXPECT_DEATH((void)TraceWorkload::from_string("0 b\n1 r 0\n"), "barriers");
}

TEST(Trace, MalformedLineAborts) {
  EXPECT_DEATH((void)TraceWorkload::from_string("0 r\n"), "address");
  EXPECT_DEATH((void)TraceWorkload::from_string("0 x 1\n"), "unknown");
}

}  // namespace
}  // namespace netcache::apps
