// Failure-containment layer tests: deadlock diagnosis (blocked-task
// reports), the run watchdog (RunLimits), the opt-in event trace ring, and
// the NC_ASSERT context dump. See DESIGN.md "Failure containment".
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/apps/workload.hpp"
#include "src/common/config.hpp"
#include "src/common/nc_assert.hpp"
#include "src/common/sim_error.hpp"
#include "src/core/machine.hpp"
#include "src/core/sync.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/task.hpp"
#include "src/sim/wait_list.hpp"

namespace netcache {
namespace {

using core::Machine;
using sim::Engine;
using sim::RunLimits;
using sim::Task;

/// Runs `fn`, which must throw SimError, and returns the diagnostic message.
template <typename Fn>
std::string diagnose(Fn&& fn) {
  try {
    fn();
  } catch (const SimError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected SimError";
  return {};
}

MachineConfig small_config(int nodes) {
  MachineConfig cfg;
  cfg.nodes = nodes;
  return cfg;
}

/// The classic miscounted barrier: parties = workers + 1, so the release
/// broadcast never happens and every CPU parks forever.
struct MiscountedBarrier : apps::Workload {
  core::Barrier* barrier = nullptr;
  const char* name() const override { return "miscounted-barrier"; }
  void setup(Machine& machine) override {
    barrier = &machine.make_barrier(machine.nodes() + 1);
  }
  Task<void> run(core::Cpu& cpu, int) override { co_await barrier->wait(cpu); }
  bool verify() override { return true; }
};

/// Worker 0 takes the lock and exits without releasing; everyone else queues
/// behind the leaked hold forever.
struct LeakedLock : apps::Workload {
  core::Lock* lock = nullptr;
  const char* name() const override { return "leaked-lock"; }
  void setup(Machine& machine) override { lock = &machine.make_lock(); }
  Task<void> run(core::Cpu& cpu, int tid) override {
    co_await lock->acquire(cpu);
    if (tid == 0) co_return;  // leak the hold
    co_await lock->release(cpu);
  }
  bool verify() override { return true; }
};

TEST(DeadlockDiagnosis, MiscountedBarrierNamesEveryBlockedCpu) {
  Machine machine(small_config(4));
  MiscountedBarrier wl;
  std::string report = diagnose([&] { machine.run(wl); });
  EXPECT_NE(report.find("deadlock"), std::string::npos) << report;
  EXPECT_NE(report.find("waiting on Barrier"), std::string::npos) << report;
  // Every CPU must appear with its tag and blocked-since cycle.
  for (int id = 0; id < 4; ++id) {
    std::string who = "[cpu " + std::to_string(id) + "]";
    EXPECT_NE(report.find(who), std::string::npos)
        << "missing " << who << " in:\n" << report;
  }
  EXPECT_NE(report.find("since cycle"), std::string::npos) << report;
}

TEST(DeadlockDiagnosis, LeakedLockNamesTheQueuedCpus) {
  Machine machine(small_config(2));
  LeakedLock wl;
  std::string report = diagnose([&] { machine.run(wl); });
  EXPECT_NE(report.find("waiting on Lock"), std::string::npos) << report;
  EXPECT_NE(report.find("[cpu 1]"), std::string::npos) << report;
  // CPU 0 finished (it leaked the lock but ran to completion).
  EXPECT_EQ(report.find("[cpu 0] waiting on Lock"), std::string::npos)
      << report;
}

TEST(DeadlockDiagnosisDeath, DriverExitsNonzeroWithReport) {
  // The CLI-driver contract: a diagnosed deadlock surfaces as SimError,
  // printed to stderr, process exits nonzero (examples/netcache_sim.cpp).
  auto driver = [] {
    Machine machine(small_config(2));
    MiscountedBarrier wl;
    try {
      machine.run(wl);
    } catch (const SimError& e) {
      std::fprintf(stderr, "netcache_sim: %s\n", e.what());
      std::exit(1);
    }
    std::exit(0);
  };
  EXPECT_EXIT(driver(), testing::ExitedWithCode(1),
              "waiting on Barrier.*since cycle");
}

TEST(DeadlockDiagnosis, LeakedResourceReportsTheParkedAcquirer) {
  Engine eng;
  sim::Resource port(eng, "MemPort");
  auto holder = [&]() -> Task<void> {
    co_await port.acquire({0, "holder"});
    co_return;  // never releases
  };
  auto waiter = [&]() -> Task<void> {
    co_await port.acquire({5, "reader"});
  };
  eng.spawn(holder());
  eng.spawn(waiter());
  std::string report = diagnose([&] { eng.run(); });
  EXPECT_NE(report.find("waiting on MemPort"), std::string::npos) << report;
  EXPECT_NE(report.find("[reader 5]"), std::string::npos) << report;
}

TEST(DeadlockDiagnosis, CleanRunLeavesNoBlockedWaiters) {
  Machine machine(small_config(2));
  struct Healthy : apps::Workload {
    core::Barrier* barrier = nullptr;
    const char* name() const override { return "healthy"; }
    void setup(Machine& m) override { barrier = &m.make_barrier(m.nodes()); }
    Task<void> run(core::Cpu& cpu, int) override {
      co_await barrier->wait(cpu);
    }
    bool verify() override { return true; }
  } wl;
  // fail_on_blocked is on by default; a correct barrier must not trip it.
  core::RunSummary summary = machine.run(wl);
  EXPECT_TRUE(summary.verified);
  EXPECT_TRUE(machine.engine().blocked().empty());
}

TEST(Watchdog, TripsOnZeroDelayLivelock) {
  // A NACK/retry spin: the callback reschedules itself at +0 forever.
  Engine eng;
  struct Spinner {
    Engine* eng;
    void operator()() const { eng->schedule(0, Spinner{eng}); }
  };
  eng.schedule(0, Spinner{&eng});
  RunLimits limits;
  limits.max_stalled_events = 100;
  std::string report = diagnose([&] { eng.run(limits); });
  EXPECT_NE(report.find("stalled"), std::string::npos) << report;
  EXPECT_NE(report.find("engine state"), std::string::npos) << report;
}

TEST(Watchdog, SameCycleBurstsBelowTheLimitPass) {
  Engine eng;
  for (int i = 0; i < 50; ++i) eng.schedule(7, [] {});
  RunLimits limits;
  limits.max_stalled_events = 100;
  EXPECT_EQ(eng.run(limits), 7);
}

TEST(Watchdog, TripsOnVirtualTimeBudget) {
  Engine eng;
  struct Ticker {
    Engine* eng;
    void operator()() const { eng->schedule(10, Ticker{eng}); }
  };
  eng.schedule(0, Ticker{&eng});
  RunLimits limits;
  limits.max_cycles = 500;
  std::string report = diagnose([&] { eng.run(limits); });
  EXPECT_NE(report.find("max_cycles"), std::string::npos) << report;
  EXPECT_EQ(eng.now(), 500);
}

TEST(Watchdog, TripsOnEventBudget) {
  Engine eng;
  struct Ticker {
    Engine* eng;
    void operator()() const { eng->schedule(10, Ticker{eng}); }
  };
  eng.schedule(0, Ticker{&eng});
  RunLimits limits;
  limits.max_events = 100;
  std::string report = diagnose([&] { eng.run(limits); });
  EXPECT_NE(report.find("max_events"), std::string::npos) << report;
}

TEST(Watchdog, ExactEventBudgetOnFinishedRunIsNotAnError) {
  Engine eng;
  int fired = 0;
  for (int i = 0; i < 3; ++i) eng.schedule(i, [&] { ++fired; });
  RunLimits limits;
  limits.max_events = 3;  // the queue is empty exactly at the budget
  EXPECT_EQ(eng.run(limits), 2);
  EXPECT_EQ(fired, 3);
}

TEST(TraceRing, DisabledByDefault) {
  Engine eng;
  eng.schedule(1, [] {});
  eng.run();
  EXPECT_FALSE(eng.trace().enabled());
  EXPECT_EQ(eng.trace().recorded(), 0u);
  EXPECT_TRUE(eng.trace().dump().empty());
}

TEST(TraceRing, KeepsTheLastKEvents) {
  Engine eng;
  eng.enable_trace(4);
  for (int i = 0; i < 10; ++i) eng.schedule(i, [] {});
  eng.run();
  EXPECT_EQ(eng.trace().recorded(), 10u);
  EXPECT_EQ(eng.trace().capacity(), 4u);
  std::vector<Cycles> times;
  eng.trace().for_each_tail(
      [&](const sim::TraceRecord& r) { times.push_back(r.time); });
  EXPECT_EQ(times, (std::vector<Cycles>{6, 7, 8, 9}));
}

TEST(TraceRing, DumpRendersKindsAndDepths) {
  Engine eng;
  eng.enable_trace(8);
  auto coro = [&]() -> Task<void> { co_await eng.delay(3); };
  eng.spawn(coro());
  eng.schedule(5, [] {});
  eng.run();
  // spawn resume @0, delay resume @3, callback @5.
  EXPECT_EQ(eng.trace().recorded(), 3u);
  std::string dump = eng.trace().dump();
  EXPECT_NE(dump.find("event trace tail (3 recorded, last 3 kept)"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("resume"), std::string::npos) << dump;
  EXPECT_NE(dump.find("callback"), std::string::npos) << dump;
  EXPECT_NE(dump.find("t=5"), std::string::npos) << dump;
}

TEST(TraceRing, FailureReportCarriesTheTraceTail) {
  Engine eng;
  eng.enable_trace(16);
  sim::WaitList wl("Stuck");
  auto waiter = [&]() -> Task<void> { co_await wl.wait(eng, {2, "cpu"}); };
  eng.spawn(waiter());
  std::string report = diagnose([&] { eng.run(); });
  EXPECT_NE(report.find("event trace tail"), std::string::npos) << report;
  EXPECT_NE(report.find("waiting on Stuck"), std::string::npos) << report;
}

TEST(TraceRing, ReenableClearsHistory) {
  Engine eng;
  eng.enable_trace(4);
  for (int i = 0; i < 6; ++i) eng.schedule(i, [] {});
  eng.run();
  eng.enable_trace(4);
  EXPECT_EQ(eng.trace().recorded(), 0u);
  eng.enable_trace(0);
  EXPECT_FALSE(eng.trace().enabled());
}

TEST(AssertReportDeath, DumpsEngineContextBeforeAborting) {
  Engine eng;
  sim::WaitList wl("StuckList");
  auto waiter = [&]() -> Task<void> { co_await wl.wait(eng, {3, "cpu"}); };
  eng.spawn(waiter());
  RunLimits lenient;
  lenient.fail_on_blocked = false;
  eng.run(lenient);  // parks the waiter on purpose
  EXPECT_DEATH(NC_FATAL("corrupt state"),
               "NC_ASSERT failed.*corrupt state.*engine state.*"
               "waiting on StuckList");
}

TEST(AssertReportDeath, PlainAssertStillFires) {
  EXPECT_DEATH(NC_ASSERT(1 + 1 == 3, "arithmetic broke"),
               "1 \\+ 1 == 3.*arithmetic broke");
}

}  // namespace
}  // namespace netcache
