// Protocol behaviour tests: snooping, invalidation, directory ownership,
// writebacks, ring insertion/race handling — checked through small driven
// workloads against the public Machine API.
#include <gtest/gtest.h>

#include <functional>

#include "src/apps/workload.hpp"
#include "src/core/machine.hpp"
#include "src/net/dmon/ispeed_net.hpp"
#include "src/net/netcache/netcache_net.hpp"

namespace netcache {
namespace {

using core::Cpu;
using core::Machine;

/// Runs per-tid bodies supplied by the test.
class Script : public apps::Workload {
 public:
  std::function<sim::Task<void>(Machine&, Cpu&, int)> body;
  Machine* machine = nullptr;
  core::Barrier* bar = nullptr;

  const char* name() const override { return "script"; }
  void setup(core::Machine& m) override {
    machine = &m;
    bar = &m.make_barrier(m.nodes());
  }
  sim::Task<void> run(Cpu& cpu, int tid) override {
    if (body) co_await body(*machine, cpu, tid);
  }
  bool verify() override { return true; }
};

MachineConfig config_for(SystemKind kind, int nodes = 4) {
  MachineConfig cfg;
  cfg.nodes = nodes;
  cfg.system = kind;
  if (kind == SystemKind::kNetCache) cfg.ring.channels = 128;
  return cfg;
}

// Block 1 is homed at node 1 in a 4-node machine.
constexpr Addr kBlock = 64;

TEST(UpdateProtocols, RemoteUpdateKeepsL2ValidAndInvalidatesL1) {
  for (SystemKind kind : {SystemKind::kNetCache, SystemKind::kLambdaNet,
                          SystemKind::kDmonUpdate}) {
    Machine m(config_for(kind));
    Script s;
    s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
      if (tid == 2) co_await cpu.read(kBlock);  // cache it at node 2
      co_await s.bar->wait(cpu);
      if (tid == 0) {
        co_await cpu.write(kBlock, 4);  // update from node 0
        co_await cpu.node().fence();
      }
      co_await s.bar->wait(cpu);
      if (tid == 2) {
        EXPECT_TRUE(mach.node(2).l2().contains(kBlock))
            << to_string(mach.config().system);
        EXPECT_FALSE(mach.node(2).l1().contains(kBlock))
            << to_string(mach.config().system);
      }
    };
    m.run(s);
  }
}

TEST(ISpeed, WriteInvalidatesOtherCopies) {
  Machine m(config_for(SystemKind::kDmonInvalidate));
  Script s;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    if (tid == 2 || tid == 3) co_await cpu.read(kBlock);
    co_await s.bar->wait(cpu);
    if (tid == 0) {
      co_await cpu.write(kBlock, 4);
      co_await cpu.node().fence();
    }
    co_await s.bar->wait(cpu);
    if (tid == 0) {
      EXPECT_FALSE(mach.node(2).l2().contains(kBlock));
      EXPECT_FALSE(mach.node(3).l2().contains(kBlock));
      EXPECT_EQ(mach.node(0).l2().state(kBlock),
                cache::LineState::kExclusive);
      EXPECT_GT(mach.stats().node(2).invalidations_received +
                    mach.stats().node(3).invalidations_received,
                0u);
    }
  };
  m.run(s);
}

TEST(ISpeed, FirstReaderBecomesOwnerAndForwardsClean) {
  Machine m(config_for(SystemKind::kDmonInvalidate));
  Script s;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    auto* net = dynamic_cast<net::ISpeedNet*>(&mach.interconnect());
    EXPECT_NE(net, nullptr);
    if (net == nullptr) co_return;
    if (tid == 2) co_await cpu.read(kBlock);
    co_await s.bar->wait(cpu);
    if (tid == 2) {
      EXPECT_EQ(net->owner_of(kBlock), 2);
      EXPECT_EQ(mach.node(2).l2().state(kBlock), cache::LineState::kShared);
    }
    co_await s.bar->wait(cpu);
    if (tid == 3) co_await cpu.read(kBlock);  // forwarded from node 2
    co_await s.bar->wait(cpu);
    if (tid == 3) {
      EXPECT_EQ(net->owner_of(kBlock), 2);  // ownership stays
      EXPECT_EQ(mach.node(3).l2().state(kBlock), cache::LineState::kClean);
    }
  };
  m.run(s);
}

TEST(ISpeed, ExclusiveEvictionWritesBackAndClearsDirectory) {
  Machine m(config_for(SystemKind::kDmonInvalidate));
  Script s;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    auto* net = dynamic_cast<net::ISpeedNet*>(&mach.interconnect());
    if (tid == 0) {
      co_await cpu.read(kBlock);
      co_await cpu.write(kBlock, 4);
      co_await cpu.node().fence();
      EXPECT_EQ(net->owner_of(kBlock), 0);
      // Read a conflicting block (same L2 set: 16 KB away) to evict it.
      co_await cpu.read(kBlock + 16 * 1024);
      EXPECT_EQ(net->owner_of(kBlock), kNoNode);
      co_await cpu.node().fence();
    }
    co_await s.bar->wait(cpu);
    if (tid == 0) {
      EXPECT_EQ(mach.stats().node(0).writebacks, 1u);
    }
  };
  m.run(s);
}

TEST(ISpeed, SecondWriteToExclusiveBlockIsLocal) {
  Machine m(config_for(SystemKind::kDmonInvalidate));
  Script s;
  s.body = [](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    if (tid != 0) co_return;
    co_await cpu.read(kBlock);
    co_await cpu.write(kBlock, 4);
    co_await cpu.node().fence();
    std::uint64_t before = mach.stats().node(0).ownership_requests;
    co_await cpu.write(kBlock + 4, 4);
    co_await cpu.node().fence();
    EXPECT_EQ(mach.stats().node(0).ownership_requests, before);
  };
  m.run(s);
}

TEST(NetCache, MissInsertsIntoRingAndSecondReaderHits) {
  Machine m(config_for(SystemKind::kNetCache));
  Script s;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    auto* net = dynamic_cast<net::NetCacheNet*>(&mach.interconnect());
    EXPECT_NE(net, nullptr);
    if (net == nullptr) co_return;
    if (tid == 2) co_await cpu.read(kBlock);
    co_await s.bar->wait(cpu);
    if (tid == 3) {
      EXPECT_TRUE(net->ring()->contains(kBlock));
      co_await cpu.read(kBlock);
      EXPECT_EQ(mach.stats().node(3).shared_cache_hits, 1u);
      EXPECT_EQ(mach.stats().node(3).shared_cache_misses, 0u);
    }
  };
  m.run(s);
}

TEST(NetCache, NoRingVariantNeverHits) {
  Machine m(config_for(SystemKind::kNetCacheNoRing));
  Script s;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    if (tid == 2) co_await cpu.read(kBlock);
    co_await s.bar->wait(cpu);
    if (tid == 3) co_await cpu.read(kBlock);
    co_await s.bar->wait(cpu);
    if (tid == 0) {
      EXPECT_EQ(mach.stats().total().shared_cache_hits, 0u);
    }
  };
  m.run(s);
}

TEST(NetCache, UpdateWindowDelaysRacingRead) {
  Machine m(config_for(SystemKind::kNetCache));
  Script s;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    if (tid == 2) co_await cpu.read(kBlock);  // block now on the ring
    co_await s.bar->wait(cpu);
    if (tid == 0) {
      co_await cpu.write(kBlock, 4);  // update refreshes the ring copy
      co_await cpu.node().fence();
      // Immediately read a block in the update window from another node's
      // point of view: node 3 reads right after the update lands.
    }
    co_await s.bar->wait(cpu);
    if (tid == 3) {
      co_await cpu.read(kBlock);
    }
    co_await s.bar->wait(cpu);
    if (tid == 3) {
      // The read raced the window or cleanly hit, but it never saw a stale
      // copy: the race counter plus hits account for it.
      EXPECT_EQ(mach.stats().node(3).shared_cache_hits +
                    mach.stats().node(3).shared_cache_misses,
                1u);
    }
  };
  m.run(s);
}

TEST(AllSystems, LocalHomeMissesUseNoNetwork) {
  // Block 0 is homed at node 0: node 0's miss must not be counted as a
  // remote L2 miss and must not touch the shared cache.
  for (SystemKind kind :
       {SystemKind::kNetCache, SystemKind::kLambdaNet,
        SystemKind::kDmonUpdate, SystemKind::kDmonInvalidate}) {
    Machine m(config_for(kind));
    Script s;
    s.body = [](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
      if (tid != 0) co_return;
      co_await cpu.read(0);
      EXPECT_EQ(mach.stats().node(0).l2_misses, 0u);
      EXPECT_EQ(mach.stats().node(0).local_mem_reads, 1u);
    };
    m.run(s);
  }
}

TEST(AllSystems, PrivateDataStaysLocal) {
  for (SystemKind kind :
       {SystemKind::kNetCache, SystemKind::kLambdaNet,
        SystemKind::kDmonUpdate, SystemKind::kDmonInvalidate}) {
    Machine m(config_for(kind));
    Script s;
    s.body = [](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
      if (tid != 1) co_return;
      Addr p = mach.address_space().alloc_private(1, 256);
      co_await cpu.read(p);
      co_await cpu.write(p, 4);
      co_await cpu.node().fence();
      EXPECT_EQ(mach.stats().node(1).l2_misses, 0u);
      EXPECT_EQ(mach.stats().node(1).updates_sent, 0u);
    };
    m.run(s);
  }
}

}  // namespace
}  // namespace netcache
