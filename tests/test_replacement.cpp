#include "src/cache/replacement.hpp"

#include <gtest/gtest.h>

namespace netcache::cache {
namespace {

std::vector<LineUsage> usage4() {
  // last_use: 5, 2, 9, 4   uses: 3, 7, 1, 2   inserted: 8, 1, 6, 3
  return {LineUsage{5, 3, 8}, LineUsage{2, 7, 1}, LineUsage{9, 1, 6},
          LineUsage{4, 2, 3}};
}

TEST(Replacement, LruPicksOldestUse) {
  Rng rng(1);
  auto u = usage4();
  EXPECT_EQ(pick_victim(RingReplacement::kLru, u, rng), 1);
}

TEST(Replacement, LfuPicksLeastUsed) {
  Rng rng(1);
  auto u = usage4();
  EXPECT_EQ(pick_victim(RingReplacement::kLfu, u, rng), 2);
}

TEST(Replacement, FifoPicksOldestInsert) {
  Rng rng(1);
  auto u = usage4();
  EXPECT_EQ(pick_victim(RingReplacement::kFifo, u, rng), 1);
}

TEST(Replacement, RandomStaysInRange) {
  Rng rng(42);
  auto u = usage4();
  for (int i = 0; i < 1000; ++i) {
    int v = pick_victim(RingReplacement::kRandom, u, rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 4);
  }
}

TEST(Replacement, RandomCoversAllSlots) {
  Rng rng(7);
  auto u = usage4();
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) {
    seen[pick_victim(RingReplacement::kRandom, u, rng)] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Replacement, SingleCandidate) {
  Rng rng(1);
  std::vector<LineUsage> u{LineUsage{1, 1, 1}};
  for (auto p : {RingReplacement::kRandom, RingReplacement::kLru,
                 RingReplacement::kLfu, RingReplacement::kFifo}) {
    EXPECT_EQ(pick_victim(p, u, rng), 0);
  }
}

TEST(Replacement, TiesBreakTowardLowerIndex) {
  Rng rng(1);
  std::vector<LineUsage> u{LineUsage{3, 3, 3}, LineUsage{3, 3, 3}};
  EXPECT_EQ(pick_victim(RingReplacement::kLru, u, rng), 0);
  EXPECT_EQ(pick_victim(RingReplacement::kLfu, u, rng), 0);
  EXPECT_EQ(pick_victim(RingReplacement::kFifo, u, rng), 0);
}

}  // namespace
}  // namespace netcache::cache
