// Deeper DMON behaviour: update-ack flow control under queue pressure and
// I-SPEED ownership migration / writeback interactions.
#include <gtest/gtest.h>

#include <functional>

#include "src/apps/workload.hpp"
#include "src/core/machine.hpp"
#include "src/net/dmon/ispeed_net.hpp"

namespace netcache {
namespace {

using core::Cpu;
using core::Machine;

class Script : public apps::Workload {
 public:
  std::function<sim::Task<void>(Machine&, Cpu&, int)> body;
  Machine* machine = nullptr;
  core::Barrier* bar = nullptr;
  const char* name() const override { return "dmon-script"; }
  void setup(core::Machine& m) override {
    machine = &m;
    bar = &m.make_barrier(m.nodes());
  }
  sim::Task<void> run(Cpu& cpu, int tid) override {
    if (body) co_await body(*machine, cpu, tid);
  }
  bool verify() override { return true; }
};

TEST(DmonDetails, UpdateStormTriggersAckFlowControl) {
  // 15 writers all hammer blocks homed at node 15: its memory update queue
  // must grow past the hysteresis point and withhold acknowledgements.
  MachineConfig cfg;
  cfg.nodes = 16;
  cfg.system = SystemKind::kDmonUpdate;
  cfg.mem_queue_hysteresis = 2;
  Machine m(cfg);
  Script s;
  s.body = [](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    if (tid == 15) co_return;
    // Blocks homed at node 15: block numbers == 15 (mod 16).
    for (int i = 0; i < 8; ++i) {
      Addr block = static_cast<Addr>(16 * i + 15) * 64;
      co_await cpu.write(block + static_cast<Addr>(tid) * 4, 4);
      co_await cpu.node().fence();
    }
    (void)mach;
  };
  m.run(s);
  EXPECT_GT(m.node(15).mem().updates_queued(), 100u);
  EXPECT_GT(m.node(15).mem().acks_delayed(), 0u);
}

TEST(DmonDetails, OwnershipMigratesBetweenWriters) {
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.system = SystemKind::kDmonInvalidate;
  Machine m(cfg);
  Script s;
  constexpr Addr kBlock = 64;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    auto* net = dynamic_cast<net::ISpeedNet*>(&mach.interconnect());
    EXPECT_NE(net, nullptr);
    if (net == nullptr) co_return;
    if (tid == 0) {
      co_await cpu.read(kBlock);
      co_await cpu.write(kBlock, 4);
      co_await cpu.node().fence();
      EXPECT_EQ(net->owner_of(kBlock), 0);
    }
    co_await s.bar->wait(cpu);
    if (tid == 2) {
      co_await cpu.read(kBlock);  // forwarded from node 0 (dirty)
      co_await cpu.write(kBlock, 4);
      co_await cpu.node().fence();
      EXPECT_EQ(net->owner_of(kBlock), 2);
      EXPECT_EQ(mach.node(2).l2().state(kBlock),
                cache::LineState::kExclusive);
      // Node 0's copy was invalidated by node 2's ownership request.
      EXPECT_FALSE(mach.node(0).l2().contains(kBlock));
    }
  };
  m.run(s);
}

TEST(DmonDetails, ForwardedReadIsServedByOwnerNotMemory) {
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.system = SystemKind::kDmonInvalidate;
  Machine m(cfg);
  Script s;
  constexpr Addr kBlock = 64;  // home: node 1
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    if (tid == 0) {
      co_await cpu.read(kBlock);
      co_await cpu.write(kBlock, 4);  // dirty at node 0
      co_await cpu.node().fence();
    }
    co_await s.bar->wait(cpu);
    std::uint64_t reads_before = mach.node(1).mem().reads_served();
    if (tid == 3) {
      co_await cpu.read(kBlock);
      // The home memory served no new block read: the owner forwarded.
      EXPECT_EQ(mach.node(1).mem().reads_served(), reads_before);
      EXPECT_EQ(mach.node(3).l2().state(kBlock), cache::LineState::kClean);
    }
  };
  m.run(s);
}

TEST(DmonDetails, WritebackRefreshesMemoryOwnership) {
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.system = SystemKind::kDmonInvalidate;
  Machine m(cfg);
  Script s;
  constexpr Addr kBlock = 64;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    auto* net = dynamic_cast<net::ISpeedNet*>(&mach.interconnect());
    if (tid == 0) {
      co_await cpu.read(kBlock);
      co_await cpu.write(kBlock, 4);
      co_await cpu.node().fence();
      co_await cpu.read(kBlock + 16 * 1024);  // evict -> writeback
      co_await cpu.node().fence();
    }
    co_await s.bar->wait(cpu);
    if (tid == 3) {
      // After the writeback, memory owns the block again: node 3's read is
      // served by memory and makes node 3 the new (shared) owner.
      std::uint64_t wb = mach.stats().node(0).writebacks;
      EXPECT_EQ(wb, 1u);
      co_await cpu.read(kBlock);
      EXPECT_EQ(net->owner_of(kBlock), 3);
      EXPECT_EQ(mach.node(3).l2().state(kBlock), cache::LineState::kShared);
    }
  };
  m.run(s);
}

TEST(DmonDetails, InvalidationForcesCoherenceMissOnNextRead) {
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.system = SystemKind::kDmonInvalidate;
  Machine m(cfg);
  Script s;
  constexpr Addr kBlock = 64;
  s.body = [&s](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    if (tid == 2) co_await cpu.read(kBlock);
    co_await s.bar->wait(cpu);
    if (tid == 0) {
      co_await cpu.write(kBlock, 4);
      co_await cpu.node().fence();
    }
    co_await s.bar->wait(cpu);
    if (tid == 2) {
      std::uint64_t misses_before = mach.stats().node(2).l2_misses;
      co_await cpu.read(kBlock);  // coherence miss: copy was invalidated
      EXPECT_EQ(mach.stats().node(2).l2_misses, misses_before + 1);
    }
  };
  m.run(s);
}

}  // namespace
}  // namespace netcache
