// LambdaNet-specific behaviour: the paper's stated weakness that a node's
// reads and writes share its single transmit channel (Section 5.1: "its
// read and write transactions are not decoupled").
#include <gtest/gtest.h>

#include <functional>

#include "src/apps/workload.hpp"
#include "src/core/machine.hpp"

namespace netcache {
namespace {

using core::Cpu;
using core::Machine;

class Script : public apps::Workload {
 public:
  std::function<sim::Task<void>(Machine&, Cpu&, int)> body;
  Machine* machine = nullptr;
  const char* name() const override { return "ln-script"; }
  void setup(core::Machine& m) override { machine = &m; }
  sim::Task<void> run(Cpu& cpu, int tid) override {
    if (body) co_await body(*machine, cpu, tid);
  }
  bool verify() override { return true; }
};

TEST(LambdaNetDetails, ReplyTrafficQueuesOnTheHomeChannel) {
  // Many nodes read distinct blocks that share one home: the replies all
  // stream on that home's single channel and serialize.
  MachineConfig cfg;
  cfg.nodes = 16;
  cfg.system = SystemKind::kLambdaNet;
  Machine m(cfg);
  Script s;
  s.body = [](Machine& mach, Cpu& cpu, int tid) -> sim::Task<void> {
    if (tid == 1) co_return;  // node 1 is the home
    // Block numbers 1 mod 16, distinct per reader.
    Addr block = static_cast<Addr>(16 * (tid + 1) + 1) * 64;
    Cycles t0 = cpu.now();
    co_await cpu.read(block);
    // Reply serialization: with 15 simultaneous misses to one home, the
    // average wait far exceeds the 111-cycle contention-free latency.
    (void)t0;
    (void)mach;
  };
  auto summary = m.run(s);
  EXPECT_GT(summary.avg_l2_miss_latency, 111.0 + 50.0);
}

TEST(LambdaNetDetails, SpreadHomesAvoidTheQueue) {
  MachineConfig cfg;
  cfg.nodes = 16;
  cfg.system = SystemKind::kLambdaNet;
  Machine m(cfg);
  Script s;
  s.body = [](Machine&, Cpu& cpu, int tid) -> sim::Task<void> {
    // Each node reads a block homed at the *next* node: one request per
    // home, no reply-channel sharing... memory reads stay uncontended too.
    Addr block = static_cast<Addr>(16 + (tid + 1) % 16) * 64;
    if (static_cast<NodeId>(block / 64 % 16) == cpu.id()) co_return;
    co_await cpu.read(block);
  };
  auto summary = m.run(s);
  // avg_l2_miss_latency excludes the 5 cycles of L1/L2 tag checks that the
  // full 111-cycle read includes: the contention-free miss portion is 106.
  EXPECT_NEAR(summary.avg_l2_miss_latency, 106.0, 2.0);
}

TEST(LambdaNetDetails, OwnUpdatesDelayOwnReads) {
  // A burst of buffered writes occupies the node's channel; an immediately
  // following read's request has to wait behind the update in flight.
  auto read_latency_after_writes = [](int writes) {
    MachineConfig cfg;
    cfg.nodes = 4;
    cfg.system = SystemKind::kLambdaNet;
    Machine m(cfg);
    Script s;
    double latency = 0;
    s.body = [&latency, writes](Machine&, Cpu& cpu,
                                int tid) -> sim::Task<void> {
      if (tid != 0) co_return;
      for (int i = 0; i < writes; ++i) {
        co_await cpu.write(static_cast<Addr>(16 + i * 4) * 64, 64);
      }
      // Let the drainer claim the channel before the read's request needs
      // it (write-to-NI takes 14 cycles before the channel is seized).
      co_await cpu.compute(10);
      Cycles t0 = cpu.now();
      co_await cpu.read(static_cast<Addr>(1) * 64);
      latency = static_cast<double>(cpu.now() - t0);
    };
    m.run(s);
    return latency;
  };
  double quiet = read_latency_after_writes(0);
  double busy = read_latency_after_writes(6);
  EXPECT_DOUBLE_EQ(quiet, 111.0);
  EXPECT_GT(busy, quiet);
}

}  // namespace
}  // namespace netcache
